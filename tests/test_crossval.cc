// Cross-validation between the real engine and the cluster simulator: both
// drive the SAME LafScheduler/LruCache code, so on the same workload shape
// their caching behaviour must agree qualitatively — this pins the
// simulator (which regenerates the paper's figures) to the executable truth.
#include <gtest/gtest.h>

#include "apps/grep.h"
#include "mr/cluster.h"
#include "sim/eclipse_sim.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

struct CrossSetup {
  static constexpr int kServers = 6;
  static constexpr std::uint32_t kBlocks = 48;
};

TEST(CrossValidation, WarmHitRatiosAgree) {
  // Engine: a 48-block file, grep run twice; everything fits in cache.
  mr::ClusterOptions opts;
  opts.num_servers = CrossSetup::kServers;
  opts.block_size = 200;
  opts.cache_capacity = 1_MiB;
  opts.map_slots = 1;  // sequential per server: deterministic access order
  mr::Cluster cluster(opts);

  std::string text;
  {
    Rng rng(4);
    workload::TextOptions topts;
    topts.target_bytes = 200 * CrossSetup::kBlocks - 50;
    text = workload::GenerateText(rng, topts);
    text.resize(200 * CrossSetup::kBlocks - 50);
  }
  ASSERT_TRUE(cluster.dfs().Upload("data", text).ok());
  ASSERT_TRUE(cluster.Run(apps::GrepJob("g1", "data", "w1")).status.ok());
  auto warm = cluster.Run(apps::GrepJob("g2", "data", "w1"));
  ASSERT_TRUE(warm.status.ok());
  double engine_ratio = warm.stats.InputHitRatio();

  // Simulator: same server count, same per-server LAF policy, ample cache,
  // one scan then a second.
  sim::SimConfig cfg;
  cfg.num_nodes = CrossSetup::kServers;
  cfg.cache_per_node = 64_GiB;
  sim::EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  sim::SimJobSpec job;
  job.app = sim::GrepProfile();
  job.dataset = "data";
  job.num_blocks = CrossSetup::kBlocks;
  sim.RunJob(job);
  auto sim_warm = sim.RunJob(job);
  double sim_ratio = sim_warm.HitRatio();

  // Both substantial (same-key-same-server locality) and near-identical —
  // they execute the same LafScheduler and LruCache code over the same key
  // stream, so only engine-side parallelism can perturb the ratio.
  EXPECT_GT(engine_ratio, 0.3);
  EXPECT_GT(sim_ratio, 0.3);
  EXPECT_NEAR(engine_ratio, sim_ratio, 0.1)
      << "engine " << engine_ratio << " vs sim " << sim_ratio;
}

TEST(CrossValidation, ZeroCacheAgreesAtZero) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 200;
  opts.cache_capacity = 0;
  mr::Cluster cluster(opts);
  Rng rng(5);
  workload::TextOptions topts;
  topts.target_bytes = 4000;
  ASSERT_TRUE(cluster.dfs().Upload("d", workload::GenerateText(rng, topts)).ok());
  cluster.Run(apps::GrepJob("g1", "d", "w1"));
  auto warm = cluster.Run(apps::GrepJob("g2", "d", "w1"));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(warm.stats.icache_hits, 0u);

  sim::SimConfig cfg;
  cfg.num_nodes = 4;
  cfg.cache_per_node = 0;
  sim::EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  sim::SimJobSpec job;
  job.app = sim::GrepProfile();
  job.dataset = "d";
  job.num_blocks = 20;
  sim.RunJob(job);
  EXPECT_EQ(sim.RunJob(job).cache_hits, 0u);
}

TEST(CrossValidation, SchedulerDecisionsIdenticalForSameStream) {
  // The strongest form: two LafScheduler instances (one as the engine would
  // configure it, one as the simulator does) fed the same key stream must
  // make identical placements — they are literally the same code and state.
  dht::Ring ring;
  for (int i = 0; i < CrossSetup::kServers; ++i) ring.AddServer(i);
  sched::LafOptions laf;
  sched::LafScheduler a(ring.Servers(), ring.MakeRangeTable(), laf);
  sched::LafScheduler b(ring.Servers(), ring.MakeRangeTable(), laf);

  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    HashKey k = rng.Next();
    ASSERT_EQ(a.Assign(k), b.Assign(k)) << "step " << i;
  }
  EXPECT_EQ(a.repartitions(), b.repartitions());
  EXPECT_EQ(a.assigned_counts(), b.assigned_counts());
}

}  // namespace
}  // namespace eclipse
