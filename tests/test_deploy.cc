// Multi-process deployment tests (docs/deployment.md).
//
// Covers the bootstrap wire protocol (serde round trips, version/magic
// rejection), the coordinator/worker handshake state machines run
// in-process over real loopback TCP, a Cluster formed over deployment-mode
// workers producing output bit-identical to the in-process emulation, and —
// the real thing — eclipse-coordinator and eclipse-worker spawned as
// subprocesses running wordcount, with the printed output fingerprint
// checked against an in-process run of the same corpus.
//
// The flag-catalog case enforces the docs/deployment.md contract: every
// `--flag` the handbook mentions must exist in one of the binaries' --help
// tables (rendered from apps::WorkerFlagSet/CoordinatorFlagSet — the same
// tables the binaries print), and every table flag must be documented.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/deploy_cli.h"
#include "apps/wordcount.h"
#include "common/rng.h"
#include "mr/cluster.h"
#include "mr/deployment.h"
#include "mr/worker_host.h"
#include "net/bootstrap.h"
#include "net/retry.h"
#include "net/tcp_transport.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

namespace deploy = net::deploy;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Wire protocol

TEST(DeploySerde, HelloRoundTrip) {
  deploy::Hello in;
  in.desired_node = 7;
  in.advertise_host = "10.1.2.3";
  deploy::Hello out;
  ASSERT_TRUE(deploy::DecodeHello(deploy::EncodeHello(in), &out));
  EXPECT_EQ(out.magic, deploy::kProtocolMagic);
  EXPECT_EQ(out.version, deploy::kProtocolVersion);
  EXPECT_EQ(out.desired_node, 7);
  EXPECT_EQ(out.advertise_host, "10.1.2.3");
}

TEST(DeploySerde, WelcomeRoundTripWithRingAndPeers) {
  deploy::Welcome in;
  in.node = 3;
  in.cache_capacity = 128ull << 20;
  in.replication = 3;
  in.vnodes = 4;
  in.finger_entries = 8;
  in.scheduler_epoch = 42;
  in.ring = {{0, HashKey{111}}, {1, HashKey{222}}, {0, HashKey{333}}};
  in.peers = {{0, "hostA", 1234}, {1, "hostB", 5678}};
  deploy::Welcome out;
  ASSERT_TRUE(deploy::DecodeWelcome(deploy::EncodeWelcome(in), &out));
  EXPECT_EQ(out.node, 3);
  EXPECT_EQ(out.cache_capacity, 128ull << 20);
  EXPECT_EQ(out.replication, 3u);
  EXPECT_EQ(out.vnodes, 4u);
  EXPECT_EQ(out.finger_entries, 8u);
  EXPECT_EQ(out.scheduler_epoch, 42u);
  ASSERT_EQ(out.ring.size(), 3u);
  EXPECT_EQ(out.ring[2].server, 0);
  EXPECT_EQ(out.ring[2].position, HashKey{333});
  ASSERT_EQ(out.peers.size(), 2u);
  EXPECT_EQ(out.peers[1].node, 1);
  EXPECT_EQ(out.peers[1].host, "hostB");
  EXPECT_EQ(out.peers[1].port, 5678);
}

TEST(DeploySerde, RemainingMessagesRoundTrip) {
  deploy::Reject rej_out;
  ASSERT_TRUE(deploy::DecodeReject(deploy::EncodeReject({"too old"}), &rej_out));
  EXPECT_EQ(rej_out.reason, "too old");

  deploy::Activate act_out;
  ASSERT_TRUE(deploy::DecodeActivate(deploy::EncodeActivate({2, "w2.local", 9999}), &act_out));
  EXPECT_EQ(act_out.node, 2);
  EXPECT_EQ(act_out.host, "w2.local");
  EXPECT_EQ(act_out.port, 9999);

  deploy::Heartbeat hb_out;
  ASSERT_TRUE(deploy::DecodeHeartbeat(deploy::EncodeHeartbeat({4, 77}), &hb_out));
  EXPECT_EQ(hb_out.node, 4);
  EXPECT_EQ(hb_out.seq, 77u);

  deploy::RingUpdate ring_out;
  deploy::RingUpdate ring_in;
  ring_in.scheduler_epoch = 9;
  ring_in.ring = {{5, HashKey{42}}};
  ASSERT_TRUE(deploy::DecodeRingUpdate(deploy::EncodeRingUpdate(ring_in), &ring_out));
  EXPECT_EQ(ring_out.scheduler_epoch, 9u);
  ASSERT_EQ(ring_out.ring.size(), 1u);
  EXPECT_EQ(ring_out.ring[0].server, 5);

  deploy::PeerUpdate peers_out;
  deploy::PeerUpdate peers_in;
  peers_in.peers = {{1, "h", 2}};
  ASSERT_TRUE(deploy::DecodePeerUpdate(deploy::EncodePeerUpdate(peers_in), &peers_out));
  ASSERT_EQ(peers_out.peers.size(), 1u);

  deploy::DiskDelay delay_out;
  ASSERT_TRUE(deploy::DecodeDiskDelay(deploy::EncodeDiskDelay({1500}), &delay_out));
  EXPECT_EQ(delay_out.delay_us, 1500);
}

TEST(DeploySerde, TruncatedAndWrongTypeRejected) {
  net::Message hello = deploy::EncodeHello({});
  deploy::Hello out;
  net::Message truncated = hello;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_FALSE(deploy::DecodeHello(truncated, &out));
  net::Message wrong_type = hello;
  wrong_type.type = deploy::msg::kHeartbeat;
  EXPECT_FALSE(deploy::DecodeHello(wrong_type, &out));
  net::Message trailing = hello;
  trailing.payload += "junk";
  EXPECT_FALSE(deploy::DecodeHello(trailing, &out));
}

// ---------------------------------------------------------------------------
// Handshake over real loopback TCP (coordinator + worker hosts in-process)

TEST(Deploy, VersionMismatchRejected) {
  mr::DeploymentOptions dopts;
  mr::DeploymentCoordinator coordinator(dopts);
  ASSERT_GT(coordinator.bootstrap_port(), 0);

  net::TcpTransport client;
  client.AddPeer(deploy::kCoordinatorNode, "127.0.0.1", coordinator.bootstrap_port());
  deploy::Hello hello;
  hello.version = 999;  // a worker from the future
  net::ScopedDeadline sd(net::Deadline::After(2s));
  auto resp = client.Call(-1, deploy::kCoordinatorNode, deploy::EncodeHello(hello));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().type, deploy::msg::kReject);
  deploy::Reject reject;
  ASSERT_TRUE(deploy::DecodeReject(resp.value(), &reject));
  EXPECT_NE(reject.reason.find("version mismatch"), std::string::npos) << reject.reason;
  EXPECT_TRUE(coordinator.ActiveWorkers().empty());
}

TEST(Deploy, BadMagicRejected) {
  mr::DeploymentCoordinator coordinator({});
  ASSERT_GT(coordinator.bootstrap_port(), 0);
  net::TcpTransport client;
  client.AddPeer(deploy::kCoordinatorNode, "127.0.0.1", coordinator.bootstrap_port());
  deploy::Hello hello;
  hello.magic = 0xDEADBEEF;  // not an eclipse worker
  net::ScopedDeadline sd(net::Deadline::After(2s));
  auto resp = client.Call(-1, deploy::kCoordinatorNode, deploy::EncodeHello(hello));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().type, deploy::msg::kReject);
}

TEST(Deploy, DuplicateDesiredNodeRejected) {
  mr::DeploymentOptions dopts;
  dopts.heartbeat_interval_ms = 50;
  mr::DeploymentCoordinator coordinator(dopts);
  ASSERT_GT(coordinator.bootstrap_port(), 0);

  mr::WorkerHostOptions wopts;
  wopts.coordinator_port = coordinator.bootstrap_port();
  wopts.desired_node = 5;
  wopts.heartbeat_interval_ms = 50;
  mr::WorkerHost first(wopts);
  ASSERT_TRUE(first.Start()) << first.error();
  EXPECT_EQ(first.node(), 5);

  wopts.hello_timeout_ms = 1000;
  mr::WorkerHost second(wopts);
  EXPECT_FALSE(second.Start());
  EXPECT_NE(second.error().find("already taken"), std::string::npos) << second.error();

  coordinator.ShutdownAll();
}

TEST(Deploy, HandshakeHeartbeatRingPushAndShutdown) {
  mr::DeploymentOptions dopts;
  dopts.heartbeat_interval_ms = 20;
  dopts.cache_capacity = 8ull << 20;
  mr::DeploymentCoordinator coordinator(dopts);
  ASSERT_GT(coordinator.bootstrap_port(), 0);

  mr::WorkerHostOptions wopts;
  wopts.coordinator_port = coordinator.bootstrap_port();
  wopts.heartbeat_interval_ms = 20;
  mr::WorkerHost worker(wopts);
  ASSERT_TRUE(worker.Start()) << worker.error();
  EXPECT_EQ(worker.node(), 0);
  EXPECT_GT(worker.data_port(), 0);

  // Activation is visible to waiters, including ones that arrive late.
  EXPECT_TRUE(coordinator.WaitForWorkers(1, 2000));
  EXPECT_EQ(coordinator.WaitForWorkerAtLeast(0, 2000), 0);
  EXPECT_EQ(coordinator.ActiveWorkers(), std::vector<int>{0});

  // Heartbeats flow without a Cluster in the picture.
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (coordinator.HeartbeatCount() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(coordinator.HeartbeatCount(), 0u);
  EXPECT_GT(worker.heartbeats_sent(), 0u);

  // A pushed ring (epoch 7) lands in the worker's snapshot.
  dht::Ring ring;
  ring.AddServer(0, 1);
  coordinator.PushRing(7, ring);
  EXPECT_EQ(worker.scheduler_epoch(), 7u);

  // Shutdown drains: Serve returns 0 (clean, not coordinator-lost).
  std::thread server([&worker] { EXPECT_EQ(worker.Serve(), 0); });
  coordinator.ShutdownWorker(0);
  server.join();
  EXPECT_TRUE(coordinator.ActiveWorkers().empty());
}

TEST(Deploy, ClusterOverDeploymentMatchesInProcessOutput) {
  Rng rng(1234);
  workload::TextOptions topts;
  topts.target_bytes = 32_KiB;
  const std::string corpus = workload::GenerateText(rng, topts);

  // Reference: the plain in-process emulation.
  mr::JobResult reference;
  {
    mr::ClusterOptions copts;
    copts.num_servers = 2;
    copts.block_size = 4_KiB;
    mr::Cluster cluster(copts);
    ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());
    reference = cluster.Run(apps::WordCountJob("wc-ref", "corpus"));
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  }

  // Deployment mode: two worker hosts (in this process, but over real TCP
  // with their own transports — the same code path eclipse-worker runs).
  mr::DeploymentOptions dopts;
  dopts.heartbeat_interval_ms = 100;
  auto coordinator = std::make_shared<mr::DeploymentCoordinator>(dopts);
  ASSERT_GT(coordinator->bootstrap_port(), 0);

  mr::WorkerHostOptions wopts;
  wopts.coordinator_port = coordinator->bootstrap_port();
  wopts.heartbeat_interval_ms = 100;
  mr::WorkerHost w0(wopts), w1(wopts);
  ASSERT_TRUE(w0.Start()) << w0.error();
  ASSERT_TRUE(w1.Start()) << w1.error();
  ASSERT_TRUE(coordinator->WaitForWorkers(2, 5000));

  mr::JobResult deployed;
  {
    mr::ClusterOptions copts;
    copts.deployment = coordinator;
    copts.block_size = 4_KiB;
    mr::Cluster cluster(copts);
    ASSERT_EQ(cluster.WorkerIds().size(), 2u);
    ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());
    deployed = cluster.Run(apps::WordCountJob("wc-deploy", "corpus"));
    ASSERT_TRUE(deployed.status.ok()) << deployed.status.ToString();
  }
  coordinator->ShutdownAll();

  EXPECT_EQ(deployed.output, reference.output);
  EXPECT_EQ(apps::OutputFingerprint(deployed.output),
            apps::OutputFingerprint(reference.output));
}

// ---------------------------------------------------------------------------
// The real thing: coordinator + workers as subprocesses

class SubprocessDeployTest : public ::testing::Test {
 protected:
  static std::string BinDir() { return ECLIPSE_APPS_BIN_DIR; }

  pid_t Spawn(const std::vector<std::string>& argv, const std::string& log_path) {
    pid_t pid = fork();
    if (pid != 0) return pid;
    // Child: redirect stdout+stderr to the log and exec.
    FILE* log = std::fopen(log_path.c_str(), "w");
    if (log) {
      dup2(fileno(log), 1);
      dup2(fileno(log), 2);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    execv(cargv[0], cargv.data());
    _exit(127);
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
};

TEST_F(SubprocessDeployTest, WordCountBitIdenticalToInProcess) {
  const std::string worker_bin = BinDir() + "/eclipse-worker";
  const std::string coordinator_bin = BinDir() + "/eclipse-coordinator";
  ASSERT_EQ(access(worker_bin.c_str(), X_OK), 0) << worker_bin;
  ASSERT_EQ(access(coordinator_bin.c_str(), X_OK), 0) << coordinator_bin;

  const std::string dir = ::testing::TempDir();
  const int port = 21000 + static_cast<int>(getpid() % 20000);
  const std::string endpoint = "127.0.0.1:" + std::to_string(port);

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(Spawn({worker_bin, "--coordinator", endpoint},
                            dir + "worker" + std::to_string(i) + ".log"));
  }
  pid_t coordinator = Spawn(
      {coordinator_bin, "--port", std::to_string(port), "--workers", "3", "--wait-ms",
       "30000", "--seed", "1234", "--input-kb", "32", "--block-kb", "4"},
      dir + "coordinator.log");

  int status = 0;
  ASSERT_EQ(waitpid(coordinator, &status, 0), coordinator);
  const std::string coord_log = Slurp(dir + "coordinator.log");
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << coord_log;
  for (pid_t w : workers) {
    ASSERT_EQ(waitpid(w, &status, 0), w);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker exited " << status;
  }

  // The coordinator prints "output pairs: N fingerprint: H". Reproduce the
  // exact job in-process (same seed/corpus/block size) and compare.
  std::smatch m;
  ASSERT_TRUE(std::regex_search(
      coord_log, m, std::regex(R"(output pairs: (\d+) fingerprint: ([0-9a-f]+))")))
      << coord_log;

  Rng rng(1234);
  workload::TextOptions topts;
  topts.target_bytes = 32_KiB;
  const std::string corpus = workload::GenerateText(rng, topts);
  mr::ClusterOptions copts;
  copts.num_servers = 3;
  copts.block_size = 4_KiB;
  mr::Cluster cluster(copts);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());
  mr::JobResult reference = cluster.Run(apps::WordCountJob("wc-ref", "corpus"));
  ASSERT_TRUE(reference.status.ok());

  EXPECT_EQ(m[1].str(), std::to_string(reference.output.size())) << coord_log;
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(apps::OutputFingerprint(reference.output)));
  EXPECT_EQ(m[2].str(), expected) << coord_log;
}

// ---------------------------------------------------------------------------
// Handbook ↔ --help consistency (the deployment.md flag catalog is enforced,
// pattern established by docs/fault-tolerance.md's knob catalog)

TEST(DeployDocs, HandbookFlagsMatchBinaryHelp) {
  std::ifstream in(std::string(ECLIPSE_SOURCE_DIR) + "/docs/deployment.md");
  ASSERT_TRUE(in.good()) << "docs/deployment.md missing";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  const std::string help =
      apps::Help(apps::WorkerFlagSet()) + apps::Help(apps::CoordinatorFlagSet());

  // Every flag the handbook mentions exists in a binary's --help.
  std::set<std::string> documented;
  const std::regex flag_re(R"(--[a-z][a-z0-9-]*)");
  for (std::sregex_iterator it(doc.begin(), doc.end(), flag_re), end; it != end; ++it) {
    documented.insert(it->str());
  }
  ASSERT_FALSE(documented.empty()) << "handbook documents no flags at all";
  for (const auto& flag : documented) {
    EXPECT_NE(help.find(flag), std::string::npos)
        << "docs/deployment.md documents `" << flag << "` but no binary accepts it";
  }

  // Every flag a binary accepts is documented in the handbook.
  for (const apps::FlagSet* set : {&apps::WorkerFlagSet(), &apps::CoordinatorFlagSet()}) {
    for (std::size_t f = 0; f < set->count; ++f) {
      EXPECT_NE(doc.find(set->flags[f].name), std::string::npos)
          << set->binary << " accepts `" << set->flags[f].name
          << "` but docs/deployment.md does not document it";
    }
  }
}

TEST(DeployDocs, FlagParserBasics) {
  const apps::FlagSet& set = apps::CoordinatorFlagSet();
  const char* argv[] = {"eclipse-coordinator", "--port", "9001", "--workers=8", "--serve"};
  apps::ParsedFlags parsed = apps::Parse(set, 5, const_cast<char**>(argv));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.Int("--port", 0), 9001);
  EXPECT_EQ(parsed.Int("--workers", 0), 8);
  EXPECT_TRUE(parsed.Has("--serve"));
  EXPECT_EQ(parsed.Int("--cache-mb", 64), 64);  // default falls through

  const char* bad[] = {"x", "--no-such-flag"};
  EXPECT_FALSE(apps::Parse(set, 2, const_cast<char**>(bad)).ok);
  const char* missing[] = {"x", "--port"};
  EXPECT_FALSE(apps::Parse(set, 2, const_cast<char**>(missing)).ok);
  const char* help[] = {"x", "--help"};
  EXPECT_TRUE(apps::Parse(set, 2, const_cast<char**>(help)).help);

  std::string host;
  int port = 0;
  EXPECT_TRUE(apps::SplitHostPort("10.0.0.1:8080", &host, &port));
  EXPECT_EQ(host, "10.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(apps::SplitHostPort("nohost", &host, &port));
  EXPECT_FALSE(apps::SplitHostPort("h:99999", &host, &port));
}

}  // namespace
}  // namespace eclipse
