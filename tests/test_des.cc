// Discrete-event core unit tests + EclipseDes vs EclipseSim validation: the
// two contention models must agree on every qualitative relationship the
// figure benches rely on.
#include <gtest/gtest.h>

#include "sim/eclipse_des.h"
#include "sim/eclipse_sim.h"

namespace eclipse::sim {
namespace {

TEST(EventEngine, OrdersEventsByTimeThenFifo) {
  EventEngine engine;
  std::vector<int> order;
  engine.At(5.0, [&] { order.push_back(3); });
  engine.At(1.0, [&] { order.push_back(1); });
  engine.At(5.0, [&] { order.push_back(4); });  // same time: FIFO
  engine.At(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(engine.Run(), 5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(engine.events_processed(), 4u);
}

TEST(EventEngine, NestedSchedulingAdvancesClock) {
  EventEngine engine;
  double fired_at = -1;
  engine.After(1.0, [&] {
    EXPECT_DOUBLE_EQ(engine.now(), 1.0);
    engine.After(2.5, [&] { fired_at = engine.now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventEngine, PastTimestampsClampToNow) {
  EventEngine engine;
  double fired_at = -1;
  engine.After(2.0, [&] {
    engine.At(0.5, [&] { fired_at = engine.now(); });  // in the past
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(SharedBandwidthTest, SingleFlowFullRate) {
  EventEngine engine;
  SharedBandwidth pipe(engine, 100.0);  // 100 MB/s
  double done_at = -1;
  pipe.Transfer(200_MiB, [&] { done_at = engine.now(); });
  engine.Run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(SharedBandwidthTest, TwoEqualFlowsShareFairly) {
  EventEngine engine;
  SharedBandwidth pipe(engine, 100.0);
  double a = -1, b = -1;
  pipe.Transfer(100_MiB, [&] { a = engine.now(); });
  pipe.Transfer(100_MiB, [&] { b = engine.now(); });
  engine.Run();
  // Each gets 50 MB/s: both finish at 2 s (not 1 s).
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(SharedBandwidthTest, LateArrivalSlowsTheFirstFlow) {
  EventEngine engine;
  SharedBandwidth pipe(engine, 100.0);
  double a = -1, b = -1;
  pipe.Transfer(100_MiB, [&] { a = engine.now(); });       // alone: would end at 1.0
  engine.After(0.5, [&] {
    pipe.Transfer(50_MiB, [&] { b = engine.now(); });      // joins at 0.5
  });
  engine.Run();
  // First flow: 50 MB in [0,0.5] alone, then shares 50 MB/s → 50 MB more
  // takes 1.0 s → ends at 1.5. Second: 50 MB at 50 MB/s → also 1.5.
  EXPECT_NEAR(a, 1.5, 1e-9);
  EXPECT_NEAR(b, 1.5, 1e-9);
}

TEST(SharedBandwidthTest, DepartureSpeedsUpSurvivors) {
  EventEngine engine;
  SharedBandwidth pipe(engine, 100.0);
  double big = -1;
  pipe.Transfer(25_MiB, [] {});                       // small, departs early
  pipe.Transfer(100_MiB, [&] { big = engine.now(); });
  engine.Run();
  // Shared 50/50 until the 25 MB flow ends at t=0.5 (having moved 25 MB);
  // the big flow then has 75 MB left at full 100 MB/s → ends at 1.25.
  EXPECT_NEAR(big, 1.25, 1e-9);
}

TEST(SharedBandwidthTest, ZeroBytesAndZeroCapacity) {
  EventEngine engine;
  SharedBandwidth pipe(engine, 100.0);
  SharedBandwidth free_pipe(engine, 0.0);
  int fired = 0;
  pipe.Transfer(0, [&] { ++fired; });
  free_pipe.Transfer(1_GiB, [&] { ++fired; });
  engine.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SlotServerTest, FifoWithLimitedSlots) {
  EventEngine engine;
  SlotServer server(engine, 2);
  std::vector<double> ends;
  for (int i = 0; i < 4; ++i) {
    server.Submit([&engine, &ends](EventEngine::Callback release) {
      engine.After(10.0, [&engine, &ends, release] {
        ends.push_back(engine.now());
        release();
      });
    });
  }
  engine.Run();
  ASSERT_EQ(ends.size(), 4u);
  EXPECT_NEAR(ends[0], 10.0, 1e-9);
  EXPECT_NEAR(ends[1], 10.0, 1e-9);
  EXPECT_NEAR(ends[2], 20.0, 1e-9);
  EXPECT_NEAR(ends[3], 20.0, 1e-9);
  EXPECT_EQ(server.completed(), 4u);
  EXPECT_EQ(server.free_slots(), 2);
}

// ---- Cross-model validation -------------------------------------------

SimJobSpec DesJob(AppProfile app, std::uint32_t blocks, int iterations = 1) {
  SimJobSpec job;
  job.app = std::move(app);
  job.dataset = "des-" + job.app.name;
  job.num_blocks = blocks;
  job.iterations = iterations;
  return job;
}

TEST(DesValidation, AgreesWithGreedyWithinFactor) {
  for (auto app : {GrepProfile(), WordCountProfile(), KMeansProfile()}) {
    SimConfig cfg;
    cfg.num_nodes = 10;
    auto job = DesJob(app, 200);
    EclipseSim greedy(cfg, mr::SchedulerKind::kLaf);
    EclipseDes des(cfg);
    double t_greedy = greedy.RunJob(job).job_seconds;
    double t_des = des.RunJob(job).job_seconds;
    // The DES prices NIC/disk sharing dynamically, so IO-bound jobs can
    // legitimately run a few times longer than the static-rate estimate —
    // but the models must stay within one small constant of each other.
    EXPECT_GT(t_des, 0.25 * t_greedy) << app.name;
    EXPECT_LT(t_des, 5.0 * t_greedy) << app.name;
  }
}

TEST(DesValidation, NodeScalingShapeMatches) {
  auto time_at = [&](int nodes) {
    SimConfig cfg;
    cfg.num_nodes = nodes;
    EclipseDes des(cfg);
    return des.RunJob(DesJob(GrepProfile(), 400)).job_seconds;
  };
  double t10 = time_at(10);
  double t20 = time_at(20);
  double t40 = time_at(40);
  EXPECT_LT(t20, t10);
  EXPECT_LT(t40, t20);
}

TEST(DesValidation, WarmCacheSpeedsUpLikeGreedy) {
  SimConfig cfg;
  cfg.num_nodes = 8;
  cfg.cache_per_node = 64_GiB;
  EclipseDes des(cfg);
  auto job = DesJob(GrepProfile(), 160);
  auto cold = des.RunJob(job);
  auto warm = des.RunJob(job);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(warm.cache_hits, warm.cache_misses);
  EXPECT_LT(warm.job_seconds, cold.job_seconds);
}

TEST(DesValidation, IterationSeriesShapeMatches) {
  SimConfig cfg;
  cfg.num_nodes = 10;
  auto job = DesJob(KMeansProfile(), 150, 4);
  EclipseDes des(cfg);
  auto r = des.RunJob(job);
  ASSERT_EQ(r.iteration_seconds.size(), 4u);
  // Later iterations no slower than the cold first one.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_LE(r.iteration_seconds[i], r.iteration_seconds[0] * 1.05) << i;
  }
}

TEST(DesValidation, ContentionStretchesHeavyShuffle) {
  // The DES prices disk/NIC contention dynamically, so a shuffle-heavy job
  // (sort) must cost at least as much as the greedy model's static-rate
  // estimate — never less.
  SimConfig cfg;
  cfg.num_nodes = 10;
  auto job = DesJob(SortProfile(), 200);
  EclipseSim greedy(cfg, mr::SchedulerKind::kLaf);
  EclipseDes des(cfg);
  double t_greedy = greedy.RunJob(job).job_seconds;
  double t_des = des.RunJob(job).job_seconds;
  EXPECT_GT(t_des, 0.6 * t_greedy);
}

}  // namespace
}  // namespace eclipse::sim
