// DHT file system integration tests over an in-process transport.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "dfs/dfs_client.h"
#include "dfs/recovery.h"

namespace eclipse::dfs {
namespace {

class DfsTest : public ::testing::TestWithParam<int> {
 protected:
  void Boot(int n, Bytes block_size = 64) {
    for (int i = 0; i < n; ++i) ring_.AddServer(i);
    for (int i = 0; i < n; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      nodes_.push_back(std::make_unique<DfsNode>(i, *dispatchers_.back()));
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
    DfsClientOptions opts;
    opts.default_block_size = block_size;
    opts.user = "tester";
    client_ = std::make_unique<DfsClient>(1000, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, opts);
  }

  void Crash(int id) {
    transport_.Register(id, nullptr);
    ring_.RemoveServer(id);
  }

  net::InProcessTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<DfsNode>> nodes_;
  std::unique_ptr<DfsClient> client_;
};

std::string MakeContent(std::size_t bytes) {
  Rng rng(77);
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "line-" + std::to_string(rng.Below(1000)) + "\n";
  }
  s.resize(bytes);
  return s;
}

TEST_P(DfsTest, UploadReadRoundTrip) {
  Boot(GetParam());
  std::string content = MakeContent(1000);
  ASSERT_TRUE(client_->Upload("data.txt", content).ok());
  auto back = client_->ReadFile("data.txt");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, DfsTest, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_F(DfsTest, MetadataFields) {
  Boot(4, 128);
  std::string content = MakeContent(1000);
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().name, "f");
  EXPECT_EQ(meta.value().owner, "tester");
  EXPECT_EQ(meta.value().size, 1000u);
  EXPECT_EQ(meta.value().block_size, 128u);
  EXPECT_EQ(meta.value().num_blocks, 8u);  // ceil(1000/128)
}

TEST_F(DfsTest, DuplicateUploadRejected) {
  Boot(3);
  ASSERT_TRUE(client_->Upload("f", "abc").ok());
  EXPECT_EQ(client_->Upload("f", "xyz").code(), ErrorCode::kAlreadyExists);
}

TEST_F(DfsTest, MissingFileNotFound) {
  Boot(3);
  EXPECT_EQ(client_->ReadFile("ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(DfsTest, EmptyFile) {
  Boot(3);
  ASSERT_TRUE(client_->Upload("empty", "").ok());
  auto back = client_->ReadFile("empty");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "");
}

TEST_F(DfsTest, BlocksReplicatedOnOwnerAndNeighbors) {
  Boot(5, 100);
  std::string content = MakeContent(450);
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f").value();

  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    HashKey key = meta.KeyOfBlock(b);
    auto expected = ring_.Replicas(key, 3);
    std::string id = BlockId("f", b);
    std::set<int> holders;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i]->blocks().Contains(id)) holders.insert(static_cast<int>(i));
    }
    EXPECT_EQ(holders, std::set<int>(expected.begin(), expected.end()))
        << "block " << b << " replica set";
  }
}

TEST_F(DfsTest, MetadataOnOwnerAndNeighbors) {
  Boot(5);
  ASSERT_TRUE(client_->Upload("somefile", "content here").ok());
  auto expected = ring_.Replicas(KeyOf("somefile"), 3);
  std::set<int> holders;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->GetMetadataLocal("somefile").ok()) holders.insert(static_cast<int>(i));
  }
  EXPECT_EQ(holders, std::set<int>(expected.begin(), expected.end()));
}

TEST_F(DfsTest, PermissionDeniedForPrivateFile) {
  Boot(4);
  ASSERT_TRUE(client_->Upload("secret", "classified", 64, /*public_read=*/false).ok());
  // Same user reads fine.
  EXPECT_TRUE(client_->ReadFile("secret").ok());
  // Another user is rejected at the metadata owner.
  DfsClientOptions other;
  other.user = "mallory";
  DfsClient intruder(1001, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, other);
  EXPECT_EQ(intruder.ReadFile("secret").status().code(), ErrorCode::kPermission);
}

TEST_F(DfsTest, DeleteRemovesEverything) {
  Boot(4, 50);
  ASSERT_TRUE(client_->Upload("f", MakeContent(300)).ok());
  ASSERT_TRUE(client_->Delete("f").ok());
  EXPECT_EQ(client_->ReadFile("f").status().code(), ErrorCode::kNotFound);
  for (auto& node : nodes_) {
    EXPECT_EQ(node->blocks().Count(), 0u);
    EXPECT_TRUE(node->ListMetadataLocal().empty());
  }
}

TEST_F(DfsTest, ReadBlockRange) {
  Boot(4, 100);
  std::string content = MakeContent(250);
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f").value();
  auto range = client_->ReadBlockRange(meta, 1, 10, 20);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value(), content.substr(110, 20));
  // Last byte of block 0.
  auto last = client_->ReadBlockRange(meta, 0, 99, 1);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value(), content.substr(99, 1));
  // Out-of-range index.
  EXPECT_FALSE(client_->ReadBlockRange(meta, 99, 0, 1).ok());
}

TEST_F(DfsTest, ObjectsWithTtl) {
  Boot(3);
  HashKey key = KeyOf("obj-key");
  ASSERT_TRUE(client_->PutObject("obj", key, "payload", std::chrono::milliseconds(0)).ok());
  auto got = client_->GetObject("obj", key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "payload");
  client_->DeleteObject("obj", key);
  EXPECT_EQ(client_->GetObject("obj", key).status().code(), ErrorCode::kNotFound);
}

TEST_F(DfsTest, ListFilesUnionsDecentralizedNamespace) {
  Boot(5);
  ASSERT_TRUE(client_->Upload("b-file", "bbb").ok());
  ASSERT_TRUE(client_->Upload("a-file", "aaa").ok());
  ASSERT_TRUE(client_->Upload("c-private", "ccc", 64, /*public_read=*/false).ok());

  auto mine = client_->ListFiles();
  ASSERT_EQ(mine.size(), 3u);  // owner sees their private file too
  EXPECT_EQ(mine[0].name, "a-file");
  EXPECT_EQ(mine[1].name, "b-file");
  EXPECT_EQ(mine[2].name, "c-private");

  DfsClientOptions other;
  other.user = "someone-else";
  DfsClient visitor(1001, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, other);
  auto visible = visitor.ListFiles();
  ASSERT_EQ(visible.size(), 2u) << "private files hidden from other users";
  EXPECT_EQ(visible[0].name, "a-file");
  EXPECT_EQ(visible[1].name, "b-file");

  ASSERT_TRUE(client_->Delete("b-file").ok());
  EXPECT_EQ(client_->ListFiles().size(), 2u);
}

TEST_F(DfsTest, ReadSurvivesOwnerCrash) {
  Boot(5, 100);
  std::string content = MakeContent(500);
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f").value();

  // Crash the owner of block 0; replicas on its neighbors still serve it.
  int owner = ring_.Owner(meta.KeyOfBlock(0));
  Crash(owner);
  auto back = client_->ReadFile("f");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
}

TEST_F(DfsTest, RecoveryRestoresReplicationFactor) {
  Boot(6, 100);
  std::string content = MakeContent(600);
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f").value();

  Crash(2);
  FsRecovery recovery(1000, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); });
  auto report = recovery.Repair(3);
  EXPECT_EQ(report.blocks_lost, 0u);

  // Every durable block must again live on exactly its 3 replica targets
  // (supersets allowed for stale copies; targets must all be present).
  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    std::string id = BlockId("f", b);
    for (int target : ring_.Replicas(meta.KeyOfBlock(b), 3)) {
      EXPECT_TRUE(nodes_[static_cast<std::size_t>(target)]->blocks().Contains(id))
          << "block " << b << " missing on takeover target " << target;
    }
  }
  // Metadata replicas too.
  for (int target : ring_.Replicas(KeyOf("f"), 3)) {
    EXPECT_TRUE(nodes_[static_cast<std::size_t>(target)]->GetMetadataLocal("f").ok());
  }
}

TEST_F(DfsTest, RecoveryReportsUnrecoverableBlocks) {
  Boot(5, 1000);
  ASSERT_TRUE(client_->Upload("f", MakeContent(800)).ok());
  auto meta = client_->GetMetadata("f").value();
  ASSERT_EQ(meta.num_blocks, 1u);

  // Kill every replica holder of the single block: data is gone.
  auto holders = ring_.Replicas(meta.KeyOfBlock(0), 3);
  for (int h : holders) Crash(h);

  FsRecovery recovery(1000, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); });
  auto report = recovery.Repair(3);
  EXPECT_EQ(report.blocks_lost, 0u)
      << "block no longer appears in any inventory, so it cannot be counted";
  EXPECT_EQ(client_->ReadBlock(meta, 0).status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace eclipse::dfs
