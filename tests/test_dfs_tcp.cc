// The DHT file system running over the loopback TCP transport: identical
// node code, real wire. Verifies the transport abstraction holds end to
// end (upload/read/replication/objects) and that crashes look the same.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "dfs/dfs_client.h"
#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "net/tcp_transport.h"
#include "workload/generators.h"

namespace eclipse::dfs {
namespace {

class DfsOverTcpTest : public ::testing::Test {
 protected:
  void Boot(int n, Bytes block_size = 128) {
    for (int i = 0; i < n; ++i) ring_.AddServer(i);
    for (int i = 0; i < n; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      nodes_.push_back(std::make_unique<DfsNode>(i, *dispatchers_.back()));
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
    DfsClientOptions opts;
    opts.default_block_size = block_size;
    client_ = std::make_unique<DfsClient>(1000, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, opts);
  }

  net::TcpTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<DfsNode>> nodes_;
  std::unique_ptr<DfsClient> client_;
};

TEST_F(DfsOverTcpTest, UploadReadRoundTrip) {
  Boot(4);
  Rng rng(3);
  std::string content;
  for (int i = 0; i < 60; ++i) content += "record " + std::to_string(rng.Next()) + "\n";

  ASSERT_TRUE(client_->Upload("tcp-file", content).ok());
  auto back = client_->ReadFile("tcp-file");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
}

TEST_F(DfsOverTcpTest, ObjectsAndRangesOverTcp) {
  Boot(3);
  HashKey key = KeyOf("obj");
  ASSERT_TRUE(client_->PutObject("obj", key, std::string(10000, 'x')).ok());
  auto got = client_->GetObject("obj", key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 10000u);

  ASSERT_TRUE(client_->Upload("ranged", "0123456789abcdef", 8, true).ok());
  auto meta = client_->GetMetadata("ranged").value();
  auto range = client_->ReadBlockRange(meta, 1, 2, 4);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value(), "abcd");
}

TEST_F(DfsOverTcpTest, CrashedServerFallsBackToReplicas) {
  Boot(5, 100);
  std::string content(450, 'z');
  ASSERT_TRUE(client_->Upload("f", content).ok());
  auto meta = client_->GetMetadata("f").value();

  int owner = ring_.Owner(meta.KeyOfBlock(0));
  transport_.Register(owner, nullptr);  // close its listener
  ring_.RemoveServer(owner);

  auto back = client_->ReadFile("f");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
}

}  // namespace
}  // namespace eclipse::dfs

namespace eclipse::mr {
namespace {

// The ENTIRE MapReduce engine over real sockets: word count end-to-end with
// every data-plane byte (metadata, blocks, spills, reduces) crossing
// loopback TCP.
TEST(ClusterOverTcp, WordCountEndToEnd) {
  ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  opts.cache_capacity = 1_MiB;
  opts.use_tcp_transport = true;
  Cluster cluster(opts);

  Rng rng(31);
  workload::TextOptions topts;
  topts.target_bytes = 4000;
  topts.vocabulary = 30;
  std::string text = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobResult result = cluster.Run(apps::WordCountJob("wc-tcp", "corpus"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key))) << kv.key;
  }
}

TEST(ClusterOverTcp, CrashRecoveryOverSockets) {
  ClusterOptions opts;
  opts.num_servers = 5;
  opts.block_size = 512;
  opts.use_tcp_transport = true;
  Cluster cluster(opts);

  Rng rng(33);
  workload::TextOptions topts;
  topts.target_bytes = 3000;
  std::string text = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  ASSERT_EQ(cluster.KillServer(2).blocks_lost, 0u);
  auto back = cluster.dfs().ReadFile("corpus");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc", "corpus")).status.ok());
}

}  // namespace
}  // namespace eclipse::mr
