// Failure injection: crashed workers during and between jobs, DFS recovery
// integration, and lost-intermediate re-execution.
#include <gtest/gtest.h>

#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse::mr {
namespace {

ClusterOptions FaultyCluster(int servers = 6) {
  ClusterOptions opts;
  opts.num_servers = servers;
  opts.block_size = 256;
  opts.cache_capacity = 1_MiB;
  return opts;
}

std::string SampleText(std::uint64_t seed = 42, Bytes bytes = 4000) {
  Rng rng(seed);
  workload::TextOptions topts;
  topts.target_bytes = bytes;
  topts.vocabulary = 40;
  return workload::GenerateText(rng, topts);
}

TEST(Fault, JobSucceedsAfterPreJobCrash) {
  Cluster cluster(FaultyCluster());
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  auto report = cluster.KillServer(2);
  EXPECT_EQ(report.blocks_lost, 0u) << "triple replication must cover one failure";

  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  auto expected = apps::WordCountSerial(text);
  EXPECT_EQ(result.output.size(), expected.size());
}

TEST(Fault, TwoSequentialCrashesStillRecoverable) {
  Cluster cluster(FaultyCluster(7));
  std::string text = SampleText(7);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  // Sequential failures with recovery in between: data must survive.
  ASSERT_EQ(cluster.KillServer(1).blocks_lost, 0u);
  ASSERT_EQ(cluster.KillServer(4).blocks_lost, 0u);

  auto back = cluster.dfs().ReadFile("corpus");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);

  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.output.size(), apps::WordCountSerial(text).size());
}

TEST(Fault, UploadAfterCrashUsesSurvivors) {
  Cluster cluster(FaultyCluster(5));
  cluster.KillServer(0);
  std::string text = SampleText(9);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  auto back = cluster.dfs().ReadFile("corpus");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);
}

TEST(Fault, LostIntermediatesRerunMaps) {
  // Run a tagged job, then kill a server holding spills (they are NOT
  // replicated, §II-C); a re-submission must transparently re-run the
  // affected maps and still produce correct output.
  Cluster cluster(FaultyCluster(6));
  std::string text = SampleText(11);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobSpec first = apps::WordCountJob("wc-a", "corpus");
  first.intermediate_tag = "fault-tag";
  JobResult r1 = cluster.Run(first);
  ASSERT_TRUE(r1.status.ok());

  cluster.KillServer(3);

  JobSpec second = apps::WordCountJob("wc-b", "corpus");
  second.intermediate_tag = "fault-tag";
  JobResult r2 = cluster.Run(second);
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();

  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(r2.output.size(), expected.size());
  for (const auto& kv : r2.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key)));
  }
}

TEST(Fault, MembershipDetectsEngineKill) {
  ClusterOptions opts = FaultyCluster(4);
  opts.start_membership = true;
  opts.membership.heartbeat_interval = std::chrono::milliseconds(10);
  opts.membership.miss_threshold = 2;
  Cluster cluster(opts);

  cluster.worker(2).Kill();  // raw kill, no Cluster bookkeeping
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool detected = false;
  while (std::chrono::steady_clock::now() < deadline && !detected) {
    detected = true;
    for (int id : {0, 1, 3}) {
      auto* agent = cluster.membership(id);
      ASSERT_NE(agent, nullptr);
      if (agent->ring_view().Contains(2)) detected = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(detected) << "heartbeats should evict the killed worker";
}

TEST(Fault, ReplicationOneLosesDataHonestly) {
  // With replication disabled, a crash genuinely destroys the victim's
  // blocks — and the system reports that instead of pretending otherwise.
  ClusterOptions opts = FaultyCluster(5);
  opts.replication = 1;
  Cluster cluster(opts);
  std::string text = SampleText(17);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  // Find a server holding at least one (sole) block copy.
  int victim = -1;
  for (int id : cluster.WorkerIds()) {
    if (cluster.worker(id).dfs_node().blocks().Count() > 0) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);

  cluster.KillServer(victim);
  auto back = cluster.dfs().ReadFile("corpus");
  EXPECT_FALSE(back.ok()) << "sole replicas died with the server";
}

TEST(Fault, HeartbeatsDriveAutomaticRecovery) {
  // No operator call to Cluster::KillServer: the worker just dies, the
  // heartbeat agents detect it, and the cluster repairs itself.
  ClusterOptions opts = FaultyCluster(5);
  opts.start_membership = true;
  opts.membership.heartbeat_interval = std::chrono::milliseconds(10);
  opts.membership.miss_threshold = 2;
  Cluster cluster(opts);

  std::string text = SampleText(21);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  cluster.worker(2).Kill();  // raw crash

  // Wait until auto-recovery removed it from the cluster ring.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (std::chrono::steady_clock::now() < deadline && cluster.ring().Contains(2)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(cluster.ring().Contains(2)) << "heartbeats should evict the dead worker";

  // Give re-replication a moment, then verify full replication on the new
  // replica sets and that jobs run.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto meta = cluster.dfs().GetMetadata("corpus").value();
  dht::Ring ring = cluster.ring();
  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    for (int target : ring.Replicas(meta.KeyOfBlock(b), 3)) {
      EXPECT_TRUE(cluster.worker(target).dfs_node().blocks().Contains(dfs::BlockId("corpus", b)))
          << "block " << b << " not re-replicated to " << target;
    }
  }
  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.output.size(), apps::WordCountSerial(text).size());
}

TEST(Fault, KillDuringJobStillCompletes) {
  Cluster cluster(FaultyCluster(6));
  std::string text = SampleText(13, 20000);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  // Kill a server shortly after the job starts, from another thread.
  std::thread killer([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cluster.KillServer(1);
  });
  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  killer.join();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key))) << kv.key;
  }
}

}  // namespace
}  // namespace eclipse::mr
