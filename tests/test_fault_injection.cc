// The executable contract of the chaos layer (docs/fault-tolerance.md):
// deterministic replay of seeded FaultPlans, clean errors on retry-budget
// exhaustion, partitions that heal mid-job, speculative duplicates that
// cannot change job output, and a doc-consistency check that every
// fault-tolerance knob is actually documented in the handbook.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "common/rng.h"
#include "fault/fault_plan.h"
#include "fault/fault_transport.h"
#include "fault/straggler.h"
#include "mr/cluster.h"
#include "net/retry.h"
#include "net/transport.h"
#include "sim/constants.h"
#include "sim/eclipse_des.h"
#include "sim/sim_job.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

using namespace std::chrono_literals;

std::string DecisionSignature(const fault::EdgeDecision& d) {
  std::ostringstream os;
  os << d.partitioned << d.hang << d.drop_request << d.drop_response << d.duplicate
     << ':' << d.delay_us << ';';
  return os.str();
}

/// Drive `n` decisions on a fixed edge set and fold them into one string.
std::string DecisionStream(fault::FaultController& ctl, int n) {
  std::string sig;
  for (int i = 0; i < n; ++i) {
    for (auto [from, to] : {std::pair{0, 1}, std::pair{1, 0}, std::pair{2, 3}}) {
      sig += DecisionSignature(ctl.Decide(from, to));
    }
  }
  return sig;
}

fault::FaultPlan ProbabilisticPlan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.edges.push_back(fault::EdgeFault{.from = fault::kAnyNode,
                                        .to = fault::kAnyNode,
                                        .drop_request = 0.3,
                                        .drop_response = 0.1,
                                        .duplicate = 0.2,
                                        .delay = 100us,
                                        .delay_jitter = 400us});
  return plan;
}

TEST(FaultInjection, SeededPlanReplaysIdentically) {
  fault::FaultController ctl;
  ctl.Install(ProbabilisticPlan(7));
  std::string first = DecisionStream(ctl, 200);

  // Re-installing the same plan resets the per-edge counters: the decision
  // stream replays from the start, bit-identically.
  ctl.Install(ProbabilisticPlan(7));
  std::string second = DecisionStream(ctl, 200);
  EXPECT_EQ(first, second);

  // A different seed produces a different stream (600 draws at p=0.3 —
  // collision would mean the seed is ignored).
  ctl.Install(ProbabilisticPlan(8));
  EXPECT_NE(first, DecisionStream(ctl, 200));
}

TEST(FaultInjection, EdgeDecisionsAreIndependentPerEdge) {
  // The same plan must not make lockstep decisions on different edges —
  // the seed is mixed with the edge identity.
  fault::FaultController ctl;
  ctl.Install(ProbabilisticPlan(7));
  std::string a, b;
  for (int i = 0; i < 200; ++i) {
    a += DecisionSignature(ctl.Decide(0, 1));
    b += DecisionSignature(ctl.Decide(4, 5));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjection, RetryBudgetExhaustionIsACleanError) {
  auto controller = std::make_shared<fault::FaultController>();
  auto inner = std::make_unique<net::InProcessTransport>();
  fault::FaultInjectingTransport transport(std::move(inner), controller);

  std::atomic<int> handled{0};
  transport.Register(1, [&handled](int, const net::Message& m) {
    ++handled;
    return m;  // echo
  });

  fault::FaultPlan plan;
  plan.edges.push_back(fault::EdgeFault{.from = 0, .to = 1, .drop_request = 1.0});
  fault::ScopedFaultPlan scoped(*controller, plan);

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 100us;
  policy.budget = 5ms;
  auto t0 = std::chrono::steady_clock::now();
  auto result = net::CallWithRetry(transport, 0, 1, net::Message{1, "ping"}, policy);
  auto elapsed = std::chrono::steady_clock::now() - t0;

  // Exhaustion surfaces the last kUnavailable — the caller's signal to try
  // a different replica — and a 100% request drop never reaches the handler.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(handled.load(), 0);
  EXPECT_LT(elapsed, 1s) << "budget must bound the whole retry chain";

  // An edge the plan does not match is untouched.
  auto clean = net::CallWithRetry(transport, 2, 1, net::Message{1, "ping"}, policy);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(handled.load(), 1);
}

TEST(FaultInjection, ExpiredDeadlineBeatsHungPeer) {
  auto controller = std::make_shared<fault::FaultController>();
  fault::FaultInjectingTransport transport(std::make_unique<net::InProcessTransport>(),
                                           controller);
  transport.Register(1, [](int, const net::Message& m) { return m; });

  fault::FaultPlan plan;
  plan.hung_nodes = {1};
  plan.hang_cap = 10s;  // far beyond the deadline: the deadline must win
  fault::ScopedFaultPlan scoped(*controller, plan);

  net::ScopedDeadline deadline(net::Deadline::After(20ms));
  auto t0 = std::chrono::steady_clock::now();
  auto result = transport.Call(0, 1, net::Message{1, "ping"});
  auto elapsed = std::chrono::steady_clock::now() - t0;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5s);
}

TEST(FaultInjection, PartitionHealsMidJobAndJobCompletes) {
  auto controller = std::make_shared<fault::FaultController>();
  mr::ClusterOptions opts;
  opts.num_servers = 8;
  opts.block_size = 1_KiB;
  opts.fault_controller = controller;
  // Flaky-network posture: the first RPC into the partition should usually
  // survive it by retrying until the heal.
  opts.rpc_retry.max_attempts = 8;
  opts.rpc_retry.initial_backoff = 500us;
  opts.rpc_retry.max_backoff = 10ms;
  opts.rpc_retry.budget = 300ms;
  mr::Cluster cluster(opts);

  Rng rng(3);
  workload::TextOptions topts;
  topts.target_bytes = 40_KiB;
  std::string corpus = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());

  fault::FaultPlan plan;
  plan.partitions.push_back(fault::Partition{{0, 1, 2, 3}, {4, 5, 6, 7}});
  controller->Install(plan);

  std::thread healer([&controller] {
    std::this_thread::sleep_for(30ms);
    controller->Clear();  // version bump: blocked and retrying calls notice
  });
  auto result = cluster.Run(apps::WordCountJob("wc-partition", "corpus"));
  healer.join();

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  auto oracle = apps::WordCountSerial(corpus);
  ASSERT_EQ(result.output.size(), oracle.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(oracle.at(kv.key))) << kv.key;
  }
}

TEST(FaultInjection, SpeculativeDuplicatesCannotChangeOutput) {
  auto controller = std::make_shared<fault::FaultController>();
  mr::ClusterOptions opts;
  opts.num_servers = 6;
  opts.block_size = 1_KiB;
  opts.fault_controller = controller;
  mr::Cluster cluster(opts);

  Rng rng(5);
  workload::TextOptions topts;
  topts.target_bytes = 48_KiB;
  std::string corpus = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());

  // Server 0's disk is honest but 10 ms slow per op — two orders of
  // magnitude over a healthy task here, so its tasks straggle reliably.
  fault::FaultPlan plan;
  plan.slow_disk_nodes = {0};
  plan.slow_disk_latency = 10ms;
  fault::ScopedFaultPlan scoped(*controller, plan);

  mr::JobSpec job = apps::WordCountJob("wc-spec", "corpus");
  job.speculative_execution = true;
  job.straggler_multiplier = 1.5;
  job.speculation_min_completed = 2;
  auto result = cluster.Run(job);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  // Duplicate attempts raced; the output must still equal the serial oracle
  // exactly (idempotent spills, first-writer-wins).
  auto oracle = apps::WordCountSerial(corpus);
  ASSERT_EQ(result.output.size(), oracle.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(oracle.at(kv.key))) << kv.key;
  }
  EXPECT_GT(result.stats.maps_speculated + result.stats.reduces_speculated, 0u)
      << "the slow disk never triggered speculation";
}

TEST(FaultInjection, StragglerDetectorThreshold) {
  fault::StragglerDetector det(
      fault::StragglerOptions{.percentile = 0.5, .multiplier = 2.0, .min_completed = 3});
  EXPECT_FALSE(det.IsStraggler(1'000'000)) << "no verdict before min_completed";
  det.Record(100);
  det.Record(200);
  EXPECT_EQ(det.ThresholdUs(), 0u);
  det.Record(300);
  EXPECT_EQ(det.ThresholdUs(), 400u);  // p50=200 × 2.0
  EXPECT_FALSE(det.IsStraggler(400));
  EXPECT_TRUE(det.IsStraggler(401));
}

TEST(FaultInjection, StragglerPercentileEdgeCases) {
  // n = 1 at the gate: the single sample is every percentile.
  {
    fault::StragglerDetector det(
        fault::StragglerOptions{.percentile = 0.5, .multiplier = 2.0, .min_completed = 1});
    det.Record(250);
    EXPECT_EQ(det.ThresholdUs(), 500u);
  }
  // All-equal populations: every percentile anchors on the same value.
  {
    fault::StragglerDetector det(
        fault::StragglerOptions{.percentile = 0.99, .multiplier = 3.0, .min_completed = 3});
    for (int i = 0; i < 8; ++i) det.Record(100);
    EXPECT_EQ(det.ThresholdUs(), 300u);
  }
  // percentile = 0.0 anchors at the fastest recent completion...
  {
    fault::StragglerDetector det(
        fault::StragglerOptions{.percentile = 0.0, .multiplier = 2.0, .min_completed = 3});
    det.Record(300);
    det.Record(100);
    det.Record(200);
    EXPECT_EQ(det.ThresholdUs(), 200u);
  }
  // ...and 1.0 at the slowest.
  {
    fault::StragglerDetector det(
        fault::StragglerOptions{.percentile = 1.0, .multiplier = 2.0, .min_completed = 3});
    det.Record(300);
    det.Record(100);
    det.Record(200);
    EXPECT_EQ(det.ThresholdUs(), 600u);
  }
  // multiplier < 1 is legal: speculate before the anchor itself elapses.
  {
    fault::StragglerDetector det(
        fault::StragglerOptions{.percentile = 1.0, .multiplier = 0.5, .min_completed = 3});
    det.Record(100);
    det.Record(200);
    det.Record(300);
    EXPECT_EQ(det.ThresholdUs(), 150u);
    EXPECT_FALSE(det.IsStraggler(150));
    EXPECT_TRUE(det.IsStraggler(151));
  }
}

TEST(FaultInjection, StragglerOptionsOutOfContractAreClamped) {
  // The old code silently treated min_completed <= 0 as 1 deep inside
  // ThresholdUs; the contract now lives in StragglerOptions and is enforced
  // (and logged) once, at construction.
  fault::StragglerDetector det(fault::StragglerOptions{.percentile = 1.5,
                                                       .multiplier = -2.0,
                                                       .min_completed = 0,
                                                       .window = 0,
                                                       .deviation_multiplier = -1.0});
  EXPECT_DOUBLE_EQ(det.options().percentile, 1.0);
  EXPECT_DOUBLE_EQ(det.options().multiplier, 1.0);
  EXPECT_EQ(det.options().min_completed, 1);
  EXPECT_GE(det.options().window, 2);
  EXPECT_DOUBLE_EQ(det.options().deviation_multiplier, 0.0);
  det.Record(100);
  EXPECT_EQ(det.ThresholdUs(), 100u) << "clamped: one sample suffices, multiplier 1.0";
}

TEST(FaultInjection, StragglerDeviationModeAnchorsOnPrediction) {
  fault::StragglerDetector det(fault::StragglerOptions{.percentile = 0.5,
                                                       .multiplier = 2.0,
                                                       .min_completed = 3,
                                                       .window = 512,
                                                       .deviation_multiplier = 1.5});
  EXPECT_EQ(det.ThresholdUs(), 0u) << "percentile mode and cold: no verdict";
  det.SetPredictedUs(1000);
  EXPECT_EQ(det.ThresholdUs(), 1500u) << "deviation mode needs no local samples";
  EXPECT_TRUE(det.IsStraggler(1501));
  det.Record(100);
  det.Record(100);
  det.Record(100);
  EXPECT_EQ(det.ThresholdUs(), 1500u) << "the installed prediction outranks the percentile";
  det.SetPredictedUs(0);
  EXPECT_EQ(det.ThresholdUs(), 200u) << "cleared: back to p50 = 100 x 2.0";
}

TEST(FaultInjection, StragglerDeviationMultiplierDefaultsToMultiplier) {
  fault::StragglerDetector det(fault::StragglerOptions{
      .percentile = 0.5, .multiplier = 3.0, .min_completed = 3, .window = 512});
  det.SetPredictedUs(100);
  EXPECT_EQ(det.ThresholdUs(), 300u) << "deviation_multiplier = 0 reuses multiplier";
}

TEST(FaultInjection, StragglerWindowSlides) {
  fault::StragglerDetector det(fault::StragglerOptions{
      .percentile = 1.0, .multiplier = 1.0, .min_completed = 2, .window = 4});
  for (int i = 0; i < 4; ++i) det.Record(100);
  EXPECT_EQ(det.ThresholdUs(), 100u);
  for (int i = 0; i < 4; ++i) det.Record(1000);
  EXPECT_EQ(det.ThresholdUs(), 1000u) << "the four fast completions fell out of the window";
  for (int i = 0; i < 4; ++i) det.Record(100);
  EXPECT_EQ(det.ThresholdUs(), 100u) << "the slow regime fell out again";
  EXPECT_EQ(det.completed(), 12) << "completed() counts lifetime, not the window";
}

TEST(FaultInjection, DesSpeculationRecoversSlowNodes) {
  // The simulator's variant of the same knob: a 10x-slow node straggles, a
  // backup wins, and job time improves versus no speculation.
  sim::SimConfig config;
  config.num_nodes = 8;
  config.map_slots = 2;
  config.slow_nodes = 1;
  config.slow_factor = 10.0;
  config.speculation_check_sec = 0.5;

  sim::SimJobSpec spec;
  spec.app = sim::WordCountProfile();
  spec.num_blocks = 64;

  sim::EclipseDes plain(config);
  auto without = plain.RunJob(spec);
  EXPECT_EQ(without.speculative_tasks, 0u);

  config.speculative_execution = true;
  config.straggler_multiplier = 1.5;
  sim::EclipseDes speculating(config);
  auto with = speculating.RunJob(spec);

  EXPECT_EQ(with.map_tasks, without.map_tasks);  // first-wins: one completion per task
  EXPECT_GT(with.speculative_tasks, 0u);
  EXPECT_GT(with.speculative_wins, 0u);
  EXPECT_LT(with.job_seconds, without.job_seconds);
}

// ---- Doc-consistency: every knob name must appear in the handbook. --------

// Compile-time pin: if a knob is renamed, this list stops compiling and the
// handbook + the grep list below must be updated together.
[[maybe_unused]] void PinKnobNames() {
  (void)&mr::JobSpec::task_deadline;
  (void)&mr::JobSpec::speculative_execution;
  (void)&mr::JobSpec::straggler_percentile;
  (void)&mr::JobSpec::straggler_multiplier;
  (void)&mr::JobSpec::speculation_min_completed;
  (void)&mr::JobSpec::predictor_speculation;
  (void)&mr::JobSpec::straggler_deviation;
  (void)&mr::JobSpec::deadline;
  (void)&mr::JobSpec::slo;
  (void)&mr::JobSpec::admission;
  (void)&net::RetryPolicy::max_attempts;
  (void)&net::RetryPolicy::initial_backoff;
  (void)&net::RetryPolicy::max_backoff;
  (void)&net::RetryPolicy::backoff_multiplier;
  (void)&net::RetryPolicy::jitter;
  (void)&net::RetryPolicy::budget;
  (void)&fault::FaultPlan::seed;
  (void)&fault::FaultPlan::edges;
  (void)&fault::FaultPlan::partitions;
  (void)&fault::FaultPlan::hung_nodes;
  (void)&fault::FaultPlan::hang_cap;
  (void)&fault::FaultPlan::slow_disk_nodes;
  (void)&fault::FaultPlan::slow_disk_latency;
  (void)&fault::EdgeFault::drop_request;
  (void)&fault::EdgeFault::drop_response;
  (void)&fault::EdgeFault::duplicate;
  (void)&fault::EdgeFault::delay;
  (void)&fault::EdgeFault::delay_jitter;
  (void)&fault::StragglerOptions::percentile;
  (void)&fault::StragglerOptions::multiplier;
  (void)&fault::StragglerOptions::min_completed;
  (void)&fault::StragglerOptions::window;
  (void)&fault::StragglerOptions::deviation_multiplier;
  (void)&sim::SimConfig::speculative_execution;
  (void)&sim::SimConfig::speculation_check_sec;
  (void)&sim::SimConfig::predictor_speculation;
  (void)&sim::SimConfig::straggler_deviation;
  (void)&mr::ClusterOptions::fault_controller;
  (void)&mr::ClusterOptions::rpc_retry;
}

TEST(FaultInjection, HandbookDocumentsEveryKnob) {
  std::ifstream in(std::string(ECLIPSE_SOURCE_DIR) + "/docs/fault-tolerance.md");
  ASSERT_TRUE(in.good()) << "docs/fault-tolerance.md missing";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  const char* knobs[] = {
      // JobSpec
      "task_deadline", "speculative_execution", "straggler_percentile",
      "straggler_multiplier", "speculation_min_completed",
      "predictor_speculation", "straggler_deviation",
      // SLO / admission control (§7)
      "deadline", "slo", "admission", "kRejectOnMiss", "kQueueOnMiss",
      "eta_us", "slo_missed",
      // StragglerOptions window + predictor knobs
      "window", "deviation_multiplier", "min_samples", "bound_sigmas",
      // RetryPolicy
      "max_attempts", "initial_backoff", "max_backoff", "backoff_multiplier",
      "jitter", "budget",
      // FaultPlan + EdgeFault
      "seed", "edges", "partitions", "hung_nodes", "hang_cap",
      "slow_disk_nodes", "slow_disk_latency", "drop_request", "drop_response",
      "duplicate", "delay_jitter",
      // Cluster wiring + sim
      "fault_controller", "rpc_retry", "speculation_check_sec",
      // Error codes and events operators will grep for
      "kUnavailable", "kDeadlineExceeded", "kCancelled", "fault.injected",
      "rpc_retry", "fault_slow_disk", "speculative_win",
      "kResourceExhausted", "job_admit", "job_reject", "slo_miss",
      "mr.jobs_rejected", "mr.slo_miss",
  };
  for (const char* knob : knobs) {
    EXPECT_NE(doc.find(knob), std::string::npos)
        << "docs/fault-tolerance.md does not mention `" << knob << "`";
  }
}

}  // namespace
}  // namespace eclipse
