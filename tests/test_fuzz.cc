// Robustness / model-based property tests:
//  * decoders never crash or mis-succeed on corrupted bytes,
//  * LruCache matches a reference model under long random op streams,
//  * the record reader matches the line oracle on random texts,
//  * RangeTable stays total under randomized LAF repartition sequences.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cache/lru_cache.h"
#include "common/rng.h"
#include "dfs/metadata.h"
#include "mr/record_reader.h"
#include "mr/shuffle.h"
#include "sched/cdf_partition.h"
#include "sched/laf_scheduler.h"

namespace eclipse {
namespace {

std::string RandomBytes(Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Next() & 0xFF);
  return s;
}

TEST(Fuzz, SpillDecoderSurvivesGarbage) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    auto data = RandomBytes(rng, rng.Below(200));
    auto result = mr::DecodeSpill(data);  // must not crash; ok() only if valid
    if (result.ok()) {
      // If it decoded, re-encoding must reproduce a prefix-consistent size.
      EXPECT_LE(mr::EncodeSpill(result.value()).size(), data.size() + 4);
    }
  }
}

TEST(Fuzz, ManifestDecoderSurvivesGarbage) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    auto data = RandomBytes(rng, rng.Below(200));
    auto result = mr::DecodeManifest(data);
    (void)result;
  }
}

TEST(Fuzz, MetadataDecoderSurvivesTruncationsOfValidRecord) {
  dfs::FileMetadata m;
  m.name = "some/long/file/name.txt";
  m.owner = "owner";
  m.size = 123456789;
  m.block_size = 4096;
  m.num_blocks = 30140;
  BinaryWriter w;
  m.Serialize(w);
  std::string full = w.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader r(std::string_view(full).substr(0, cut));
    auto result = dfs::FileMetadata::Deserialize(r);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " must fail";
  }
  BinaryReader r(full);
  EXPECT_TRUE(dfs::FileMetadata::Deserialize(r).ok());
}

// Reference LRU model: ordered list of (id, size), front = most recent.
class ModelLru {
 public:
  explicit ModelLru(Bytes capacity) : capacity_(capacity) {}

  bool Put(const std::string& id, Bytes size) {
    if (size > capacity_) return false;
    Erase(id);
    while (used_ + size > capacity_ && !order_.empty()) {
      used_ -= order_.back().second;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(id, size);
    index_[id] = order_.begin();
    used_ += size;
    return true;
  }

  bool Get(const std::string& id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  void Erase(const std::string& id) {
    auto it = index_.find(id);
    if (it == index_.end()) return;
    used_ -= it->second->second;
    order_.erase(it->second);
    index_.erase(it);
  }

  Bytes used() const { return used_; }
  std::size_t count() const { return order_.size(); }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::list<std::pair<std::string, Bytes>> order_;
  std::map<std::string, std::list<std::pair<std::string, Bytes>>::iterator> index_;
};

class LruModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruModelCheck, MatchesReferenceModel) {
  Rng rng(GetParam());
  const Bytes capacity = 64 + rng.Below(512);
  cache::LruCache real(capacity);
  ModelLru model(capacity);

  for (int op = 0; op < 5000; ++op) {
    std::string id = "k" + std::to_string(rng.Below(40));
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // put
        Bytes size = rng.Below(100);
        std::string data(size, 'd');
        bool a = real.Put(id, KeyOf(id), data, cache::EntryKind::kInput);
        bool b = model.Put(id, size);
        ASSERT_EQ(a, b) << "op " << op;
        break;
      }
      case 2: {  // get
        bool a = real.Get(id, cache::EntryKind::kInput) != nullptr;
        bool b = model.Get(id);
        ASSERT_EQ(a, b) << "op " << op;
        break;
      }
      default: {  // erase
        real.Erase(id);
        model.Erase(id);
        break;
      }
    }
    ASSERT_EQ(real.used(), model.used()) << "op " << op;
    ASSERT_EQ(real.Count(), model.count()) << "op " << op;
    ASSERT_LE(real.used(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruModelCheck, ::testing::Values(11, 22, 33, 44, 55));

class RecordReaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecordReaderFuzz, RandomTextsMatchLineOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    // Random text with random line lengths, including empty lines and a
    // possibly unterminated tail.
    std::string text;
    std::size_t lines = 1 + rng.Below(30);
    for (std::size_t l = 0; l < lines; ++l) {
      text += std::string(rng.Below(20), static_cast<char>('a' + (l % 26)));
      text.push_back('\n');
    }
    if (rng.Below(2) == 0 && !text.empty()) text.pop_back();

    Bytes block_size = 1 + rng.Below(40);
    dfs::FileMetadata meta;
    meta.name = "fuzz";
    meta.size = text.size();
    meta.block_size = block_size;
    meta.num_blocks = dfs::NumBlocks(text.size(), block_size);

    auto block_of = [&](std::uint64_t j) { return text.substr(j * block_size, block_size); };
    std::vector<std::string> got;
    for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
      auto records = mr::ExtractRecords(
          meta, b, '\n', block_of(b),
          [&](std::uint64_t j) -> Result<std::string> { return block_of(j); },
          [&](std::uint64_t j, Bytes off, Bytes len) -> Result<std::string> {
            return block_of(j).substr(off, len);
          });
      ASSERT_TRUE(records.ok());
      for (auto& rec : records.value()) got.push_back(std::move(rec));
    }

    std::vector<std::string> expected;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t p = text.find('\n', start);
      if (p == std::string::npos) p = text.size();
      if (p > start) expected.push_back(text.substr(start, p - start));
      start = p + 1;
    }
    ASSERT_EQ(got, expected) << "round " << round << " block_size " << block_size;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordReaderFuzz, ::testing::Values(7, 17, 27, 37));

TEST(Fuzz, LafRangesStayTotalUnderRandomStreams) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    std::vector<int> servers;
    int n = 2 + static_cast<int>(rng.Below(20));
    std::vector<std::pair<int, HashKey>> positions;
    for (int i = 0; i < n; ++i) {
      servers.push_back(i);
      positions.emplace_back(i, rng.Next());
    }
    sched::LafOptions opts;
    opts.window = 16;
    opts.alpha = rng.NextDouble();
    opts.bandwidth = 1 + rng.Below(8);
    opts.num_bins = 64 + rng.Below(512);
    sched::LafScheduler laf(servers, RangeTable::FromPositions(positions), opts);

    for (int i = 0; i < 3000; ++i) {
      // Alternate uniform keys and a few hot spots.
      HashKey key = (i % 3 == 0) ? rng.Next() : (rng.Next() & 0xFFFF000000000000ull);
      int assigned = laf.Assign(key);
      ASSERT_GE(assigned, 0);
      ASSERT_LT(assigned, n);
      // The assigned server's current range must cover the key — unless a
      // repartition just happened, in which case ownership under the NEW
      // table must still be total.
      ASSERT_GE(laf.ranges().Owner(key), 0);
    }
  }
}

TEST(Fuzz, CdfPartitionTotalForRandomPdfs) {
  Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    std::size_t bins = 1 + rng.Below(300);
    std::vector<double> pdf(bins);
    for (auto& v : pdf) v = rng.Below(10) == 0 ? rng.NextDouble() * 100 : 0.0;
    std::vector<int> servers;
    int n = 1 + static_cast<int>(rng.Below(30));
    for (int i = 0; i < n; ++i) servers.push_back(i);

    auto table = sched::PartitionCdf(sched::ConstructCdf(pdf), servers);
    for (int probe = 0; probe < 50; ++probe) {
      ASSERT_GE(table.Owner(rng.Next()), 0)
          << "round " << round << ": partition must cover the whole keyspace";
    }
  }
}

}  // namespace
}  // namespace eclipse
