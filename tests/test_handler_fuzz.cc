// Message-handler robustness: every component handler must survive
// arbitrary payloads on every message type it routes — returning an error
// message, never crashing, throwing, or corrupting state.
#include <gtest/gtest.h>

#include <memory>

#include "cache/cache_node.h"
#include "common/rng.h"
#include "dfs/dfs_node.h"
#include "dht/membership.h"
#include "net/dispatcher.h"

namespace eclipse {
namespace {

std::string RandomBytes(Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Next() & 0xFF);
  return s;
}

class HandlerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) ring_.AddServer(i);
    for (int i = 0; i < 3; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      dfs_nodes_.push_back(std::make_unique<dfs::DfsNode>(i, *dispatchers_.back()));
      dfs_nodes_.back()->EnableRouting(transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, 3);
      cache_nodes_.push_back(
          std::make_unique<cache::CacheNode>(i, *dispatchers_.back(), 4096));
      agents_.push_back(std::make_unique<dht::MembershipAgent>(
          i, transport_, *dispatchers_.back()));
      agents_.back()->SetRing(ring_);
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
    // Seed some real state so fuzz requests can also hit populated paths.
    dfs_nodes_[0]->blocks().Put("blk", 42, "payload");
    cache_nodes_[0]->local().Put("obj", 7, "cached", cache::EntryKind::kInput);
  }

  net::InProcessTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<dfs::DfsNode>> dfs_nodes_;
  std::vector<std::unique_ptr<cache::CacheNode>> cache_nodes_;
  std::vector<std::unique_ptr<dht::MembershipAgent>> agents_;
};

TEST_F(HandlerFuzz, AllTypesSurviveGarbagePayloads) {
  Rng rng(2024);
  // Sweep every routed message type with random payloads of various sizes.
  std::vector<std::uint32_t> types;
  for (std::uint32_t t = 100; t <= 105; ++t) types.push_back(t);  // membership
  for (std::uint32_t t = 200; t <= 209; ++t) types.push_back(t);  // dfs
  for (std::uint32_t t : {300u, 301u}) types.push_back(t);        // cache
  types.push_back(999);  // unrouted

  for (std::uint32_t type : types) {
    for (int round = 0; round < 50; ++round) {
      net::Message m{type, RandomBytes(rng, rng.Below(64))};
      auto resp = transport_.Call(1000, static_cast<int>(rng.Below(3)), m);
      ASSERT_TRUE(resp.ok()) << "transport-level failure on type " << type;
      // Responses are either component acks/payloads or error messages;
      // both are fine — the process must simply still be here.
    }
  }

  // State survived: the seeded block is intact. (The cache entry may have
  // been legitimately extracted by a fuzzed kCollect — that message MOVES
  // entries by design — so only verify the cache still works.)
  auto blk = dfs_nodes_[0]->blocks().Get("blk");
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk.value(), "payload");
  cache_nodes_[0]->local().Put("obj2", 8, "fresh", cache::EntryKind::kInput);
  auto obj = cache_nodes_[0]->local().Get("obj2", cache::EntryKind::kInput);
  ASSERT_TRUE(obj != nullptr);
  EXPECT_EQ(*obj, "fresh");
}

TEST_F(HandlerFuzz, EmptyPayloadsOnEveryType) {
  for (std::uint32_t type = 100; type <= 310; ++type) {
    auto resp = transport_.Call(1000, 1, net::Message{type, ""});
    ASSERT_TRUE(resp.ok()) << "type " << type;
  }
}

TEST_F(HandlerFuzz, OversizedLengthPrefixesRejected) {
  // A string whose declared length exceeds the payload must fail cleanly.
  BinaryWriter w;
  w.PutU32(0xFFFFFFFF);  // absurd length prefix
  w.PutString("x");
  for (std::uint32_t type : {dfs::msg::kGetBlock, dfs::msg::kPutBlock,
                             dfs::msg::kGetMetadata, cache::msg::kFetch}) {
    auto resp = transport_.Call(1000, 0, net::Message{type, w.str()});
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(net::IsError(resp.value())) << "type " << type;
  }
}

}  // namespace
}  // namespace eclipse
