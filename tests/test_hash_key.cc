#include "common/hash_key.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/sha1.h"

namespace eclipse {
namespace {

// FIPS 180 known-answer vectors. These pin the SHA-1 implementation's
// output bit-for-bit — the padding fast path (memset into the block
// buffer, possibly spanning two blocks) and the phase-unrolled
// compression loop must reproduce the reference digests exactly, or
// every key silently moves on the ring.
TEST(Sha1, KnownAnswerVectors) {
  EXPECT_EQ(ToHex(Sha1::Hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(ToHex(Sha1::Hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  // 56 bytes: length lands where the padding must spill into a second block.
  EXPECT_EQ(ToHex(Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  // One million 'a's, absorbed in uneven chunks to exercise Update's
  // partial-block buffering around the optimized Finish.
  Sha1 h;
  std::string chunk(4096 + 13, 'a');
  std::size_t fed = 0;
  while (fed < 1'000'000) {
    std::size_t n = std::min(chunk.size(), 1'000'000 - fed);
    h.Update(chunk.data(), n);
    fed += n;
  }
  EXPECT_EQ(ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(KeyOf, DeterministicAndSpread) {
  EXPECT_EQ(KeyOf("file-a"), KeyOf("file-a"));
  EXPECT_NE(KeyOf("file-a"), KeyOf("file-b"));
  EXPECT_NE(BlockKey("f", 0), BlockKey("f", 1));
  EXPECT_NE(BlockKey("f", 0), KeyOf("f"));
}

TEST(KeyRange, SimpleContains) {
  KeyRange r{100, 200, false};
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(199));
  EXPECT_FALSE(r.Contains(200));
  EXPECT_FALSE(r.Contains(99));
  EXPECT_EQ(r.Width(), 100u);
  EXPECT_FALSE(r.IsEmpty());
}

TEST(KeyRange, WrappingContains) {
  KeyRange r{~HashKey{0} - 10, 5, false};  // wraps past 2^64-1
  EXPECT_TRUE(r.Contains(~HashKey{0}));
  EXPECT_TRUE(r.Contains(0));
  EXPECT_TRUE(r.Contains(4));
  EXPECT_FALSE(r.Contains(5));
  EXPECT_FALSE(r.Contains(1000));
  EXPECT_EQ(r.Width(), 16u);
}

TEST(KeyRange, FullAndEmpty) {
  EXPECT_TRUE(KeyRange::Full().Contains(0));
  EXPECT_TRUE(KeyRange::Full().Contains(~HashKey{0}));
  EXPECT_FALSE(KeyRange::Empty().Contains(0));
  EXPECT_TRUE(KeyRange::Empty().IsEmpty());
  EXPECT_FALSE(KeyRange::Full().IsEmpty());
  EXPECT_EQ(KeyRange::Empty().Width(), 0u);
}

TEST(RangeTable, RejectsNonTiling) {
  RangeTable t;
  // Gap between 200 and 300.
  EXPECT_FALSE(t.Assign({{0, {0, 200, false}}, {1, {300, 0, false}}}));
  // Single non-full range cannot tile.
  EXPECT_FALSE(t.Assign({{0, {0, 200, false}}}));
  // Nothing at all.
  EXPECT_FALSE(t.Assign({}));
  EXPECT_TRUE(t.empty());
}

TEST(RangeTable, AcceptsTilingWithEmptyRanges) {
  RangeTable t;
  ASSERT_TRUE(t.Assign({{0, {0, 500, false}},
                        {1, KeyRange::Empty()},
                        {2, {500, 0, false}}}));
  EXPECT_EQ(t.Owner(0), 0);
  EXPECT_EQ(t.Owner(499), 0);
  EXPECT_EQ(t.Owner(500), 2);
  EXPECT_EQ(t.Owner(~HashKey{0}), 2);
  EXPECT_TRUE(t.RangeOf(1).IsEmpty());
}

TEST(RangeTable, FullRingSingleServer) {
  RangeTable t;
  ASSERT_TRUE(t.Assign({{7, KeyRange::Full()}}));
  EXPECT_EQ(t.Owner(0), 7);
  EXPECT_EQ(t.Owner(12345), 7);
}

TEST(RangeTable, FromPositionsOwnership) {
  // Mirrors the paper's Fig. 1 layout (scaled): servers at 5,15,26,39,47,57
  // with wraparound; the key is owned by its clockwise successor.
  RangeTable t = RangeTable::FromPositions(
      {{0, 5}, {1, 15}, {2, 26}, {3, 39}, {4, 47}, {5, 57}});
  EXPECT_EQ(t.Owner(6), 1);    // in (5, 15]
  EXPECT_EQ(t.Owner(15), 1);
  EXPECT_EQ(t.Owner(16), 2);
  EXPECT_EQ(t.Owner(56), 5);
  EXPECT_EQ(t.Owner(58), 0);   // wraps to the smallest position
  EXPECT_EQ(t.Owner(0), 0);
  EXPECT_EQ(t.Owner(5), 0);
}

// Property: FromPositions always produces a table where every key has
// exactly one owner and that owner is the clockwise successor position.
class RangeTableProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeTableProperty, EveryKeyOwnedByClockwiseSuccessor) {
  int num_servers = GetParam();
  Rng rng(static_cast<std::uint64_t>(num_servers) * 977);
  std::vector<std::pair<int, HashKey>> positions;
  for (int i = 0; i < num_servers; ++i) positions.emplace_back(i, rng.Next());

  RangeTable t = RangeTable::FromPositions(positions);
  ASSERT_EQ(t.size(), positions.size());

  for (int trial = 0; trial < 200; ++trial) {
    HashKey k = rng.Next();
    int owner = t.Owner(k);
    ASSERT_GE(owner, 0);
    // Reference: smallest position >= k, else global smallest.
    int expected = -1;
    HashKey best = 0;
    bool found = false;
    for (const auto& [id, pos] : positions) {
      if (pos >= k && (!found || pos < best)) {
        best = pos;
        expected = id;
        found = true;
      }
    }
    if (!found) {
      for (const auto& [id, pos] : positions) {
        if (expected == -1 || pos < best) {
          best = pos;
          expected = id;
        }
      }
    }
    EXPECT_EQ(owner, expected) << "key=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, RangeTableProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40, 100));

TEST(RingDistanceTest, Wraps) {
  EXPECT_EQ(RingDistance(10, 20), 10u);
  EXPECT_EQ(RingDistance(20, 10), ~HashKey{0} - 9);
  EXPECT_EQ(RingDistance(5, 5), 0u);
}

}  // namespace
}  // namespace eclipse
