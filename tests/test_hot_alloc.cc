// Zero-allocation proof for the data-path hot functions (docs/performance.md).
//
// This binary replaces the global operator new/delete with counting
// forwarders, warms the per-task scratch structures once, and then asserts
// that the steady state — ShuffleWriter::Add over records that fit the
// spill threshold, and the reduce grouping kernel (DecodeSpillViews +
// ForEachGroupViews) over a warmed ReduceScratch — performs exactly zero
// heap allocations. It runs under the plain, ASan, and TSan builds; the
// counter only observes this binary's single thread, which is why these
// cases live here and not in test_shuffle.cc (a per-binary global override
// must not leak into unrelated suites).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/arena.h"
#include "dfs/dfs_client.h"
#include "fault/straggler.h"
#include "dfs/dfs_node.h"
#include "dht/ring.h"
#include "mr/shuffle.h"
#include "net/dispatcher.h"
#include "net/transport.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Counting replacements. Everything forwards to malloc/free so the
// sanitizers still see every allocation; only the count is added.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace eclipse::mr {
namespace {

std::uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

TEST(HotAlloc, ArenaSteadyStateIsAllocationFree) {
  Arena arena;
  // Warm: establish the high-water mark.
  for (int i = 0; i < 1000; ++i) arena.CopyString("some-representative-key-bytes");
  arena.Reset();
  std::uint64_t before = AllocCount();
  std::size_t bytes = 0;
  for (int i = 0; i < 1000; ++i) {
    bytes += arena.CopyString("some-representative-key-bytes").size();
  }
  std::uint64_t delta = AllocCount() - before;
  EXPECT_EQ(bytes, 29000u);
  EXPECT_EQ(delta, 0u)
      << "a warmed arena must serve the same workload without touching the heap";
  arena.Reset();
}

TEST(HotAlloc, StragglerDetectorMemoryIsBoundedOverAMillionRecords) {
  // The detector used to keep every completion in a sorted vector (O(n)
  // insert, unbounded memory over a cluster's lifetime). It now holds a
  // fixed ring reserved at construction: a million Records — with threshold
  // reads interleaved the way the driver's sweep issues them — must not
  // touch the heap at all, and the threshold must stay stable.
  fault::StragglerOptions opts;
  opts.min_completed = 3;
  opts.window = 512;
  fault::StragglerDetector det(opts);
  // Warm past min_completed (and any lazy lock-validator state) so every
  // threshold read inside the measured loop sees a live verdict.
  for (int i = 0; i < opts.min_completed; ++i) det.Record(100);
  ASSERT_EQ(det.ThresholdUs(), 200u);
  std::uint64_t before = AllocCount();
  for (int i = 0; i < 1'000'000; ++i) {
    det.Record(100);
    if ((i & 0xFFF) == 0 && det.ThresholdUs() != 200) {
      FAIL() << "threshold drifted at record " << i << ": " << det.ThresholdUs();
    }
  }
  std::uint64_t delta = AllocCount() - before;
  EXPECT_EQ(delta, 0u)
      << "a million straggler records must run entirely inside the "
         "pre-reserved window ring and scratch buffer";
  EXPECT_EQ(det.ThresholdUs(), 200u);  // p75 = 100 x 2.0, unchanged
  EXPECT_EQ(det.completed(), 1'000'003);
}

class HotAllocShuffle : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) ring_.AddServer(i);
    for (int i = 0; i < 4; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      nodes_.push_back(std::make_unique<dfs::DfsNode>(i, *dispatchers_.back()));
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
    client_ = std::make_unique<dfs::DfsClient>(100, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); });
  }

  net::InProcessTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<dfs::DfsNode>> nodes_;
  std::unique_ptr<dfs::DfsClient> client_;
};

TEST_F(HotAllocShuffle, AddSteadyStateIsAllocationFree) {
  RangeTable ranges = ring_.MakeRangeTable();
  // Threshold far above what the measured phase writes: no spill (and so no
  // DFS call, which legitimately allocates) happens inside the window.
  ShuffleWriter w("im/hot/b0", ranges, *client_, 1_MiB,
                  std::chrono::milliseconds(0));
  constexpr int kRecords = 2000;
  // Plain control flow, no gtest macros: the measured window must contain
  // only the code under test.
  auto add_all = [&w]() -> bool {
    char key[32];
    for (int i = 0; i < kRecords; ++i) {
      int len = std::snprintf(key, sizeof key, "key-%07d", i);
      if (!w.Add(std::string_view(key, static_cast<std::size_t>(len)),
                 "value-payload-of-modest-size")
               .ok()) {
        return false;
      }
    }
    return true;
  };
  // Warm: grows each range's arena blocks and pair vectors, then Flush
  // resets them in place (capacity retained).
  ASSERT_TRUE(add_all());
  ASSERT_TRUE(w.Flush().ok());

  std::uint64_t before = AllocCount();
  bool ok = add_all();
  std::uint64_t delta = AllocCount() - before;
  ASSERT_TRUE(ok);
  EXPECT_EQ(delta, 0u)
      << "steady-state ShuffleWriter::Add must not allocate: two arena "
         "copies and a capacity-retained vector append only";
  ASSERT_TRUE(w.Flush().ok());
}

TEST(HotAlloc, ReduceGroupingKernelIsAllocationFreeWhenWarm) {
  // Build two spills the way a map task would.
  std::vector<KVView> pairs;
  std::vector<std::string> backing;
  for (int i = 0; i < 500; ++i) {
    backing.push_back("key-" + std::to_string(i % 50));
    backing.push_back("value-" + std::to_string(i));
  }
  for (std::size_t i = 0; i < backing.size(); i += 2) {
    pairs.push_back({backing[i], backing[i + 1]});
  }
  BinaryWriter enc1, enc2;
  EncodeSpillTo({pairs.begin(), pairs.begin() + 250}, enc1);
  EncodeSpillTo({pairs.begin() + 250, pairs.end()}, enc2);
  const std::string spill1 = enc1.Take();
  const std::string spill2 = enc2.Take();

  ReduceScratch scratch;
  // No gtest macros inside: the second run is the measured window.
  auto kernel = [&]() -> bool {
    scratch.Clear();
    if (!DecodeSpillViews(spill1, &scratch.pairs).ok()) return false;
    if (!DecodeSpillViews(spill2, &scratch.pairs).ok()) return false;
    std::size_t groups = 0, values = 0;
    ForEachGroupViews(scratch, [&](std::string_view key,
                                   const std::vector<std::string_view>& vs) {
      if (key.empty()) return false;
      ++groups;
      values += vs.size();
      return true;
    });
    return groups == 50 && values == 500;
  };
  ASSERT_TRUE(kernel());  // warm: scratch vectors reach high-water capacity

  std::uint64_t before = AllocCount();
  bool ok = kernel();
  std::uint64_t delta = AllocCount() - before;
  ASSERT_TRUE(ok);
  EXPECT_EQ(delta, 0u)
      << "decode + index-sort grouping over a warmed ReduceScratch must not "
         "allocate (std::sort is in-place; stable_sort's merge buffer is "
         "exactly what ForEachGroupViews exists to avoid)";
}

}  // namespace
}  // namespace eclipse::mr
