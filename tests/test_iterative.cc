// Iterative-driver correctness: k-means, logistic regression, and page rank
// against their serial references, plus restart-from-iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kmeans.h"
#include "apps/logreg.h"
#include "apps/pagerank.h"
#include "apps/text_util.h"
#include "mr/iterative.h"
#include "workload/generators.h"

namespace eclipse::mr {
namespace {

ClusterOptions SmallCluster(int servers = 4) {
  ClusterOptions opts;
  opts.num_servers = servers;
  opts.block_size = 512;
  opts.cache_capacity = 4_MiB;
  return opts;
}

std::vector<std::vector<double>> ParsePoints(const std::string& csv) {
  std::vector<std::vector<double>> points;
  for (const auto& line : apps::Split(csv, '\n')) {
    auto p = apps::ParseDoubles(line);
    if (!p.empty()) points.push_back(std::move(p));
  }
  return points;
}

void ExpectCentroidsNear(const apps::Centroids& a, const apps::Centroids& b,
                         double tol = 1e-6) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "centroid " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_NEAR(a[i][j], b[i][j], tol) << "centroid " << i << " dim " << j;
    }
  }
}

TEST(IterativeKMeans, MatchesSerialLloydSteps) {
  Cluster cluster(SmallCluster());
  Rng rng(10);
  workload::PointsOptions popts;
  popts.num_points = 300;
  popts.clusters = 3;
  std::string csv = workload::GeneratePoints(rng, popts);
  ASSERT_TRUE(cluster.dfs().Upload("points", csv).ok());

  apps::Centroids initial = {{10.0, 10.0}, {50.0, 50.0}, {90.0, 90.0}};
  const int kIters = 4;
  auto spec = apps::KMeansIterations("km", "points", initial, kIters);
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.iterations_run, kIters);

  // Serial reference: the same Lloyd steps.
  auto points = ParsePoints(csv);
  apps::Centroids expected = initial;
  for (int i = 0; i < kIters; ++i) expected = apps::KMeansSerialStep(points, expected);

  ExpectCentroidsNear(apps::DecodeCentroids(result.final_state), expected, 1e-6);
}

TEST(IterativeKMeans, LaterIterationsHitInputCache) {
  Cluster cluster(SmallCluster());
  Rng rng(11);
  workload::PointsOptions popts;
  popts.num_points = 200;
  std::string csv = workload::GeneratePoints(rng, popts);
  ASSERT_TRUE(cluster.dfs().Upload("points", csv).ok());

  auto spec = apps::KMeansIterations("km", "points", {{0.0, 0.0}, {100.0, 100.0}}, 3);
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.per_iteration.size(), 3u);
  EXPECT_EQ(result.per_iteration[0].icache_hits, 0u);
  EXPECT_GT(result.per_iteration[1].icache_hits, 0u)
      << "iteration 2+ should reuse iCache'd input blocks (paper Fig. 10)";
  EXPECT_GT(result.per_iteration[2].icache_hits, 0u);
}

TEST(IterativeLogReg, MatchesSerialGradientSteps) {
  Cluster cluster(SmallCluster());
  Rng rng(13);
  std::string data = workload::GenerateLabeledPoints(rng, 200, 3);
  ASSERT_TRUE(cluster.dfs().Upload("samples", data).ok());

  std::vector<double> w0 = {0.0, 0.0, 0.0, 0.0};
  const int kIters = 3;
  const double kLr = 0.5;
  auto spec = apps::LogRegIterations("lr", "samples", w0, kIters, kLr);
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok());

  std::vector<apps::LabeledPoint> points;
  for (const auto& line : apps::Split(data, '\n')) {
    auto p = apps::ParseLabeledPoint(line);
    if (!p.features.empty()) points.push_back(std::move(p));
  }
  std::vector<double> expected = w0;
  for (int i = 0; i < kIters; ++i) expected = apps::LogRegSerialStep(points, expected, kLr);

  auto got = apps::ParseDoubles(result.final_state);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t j = 0; j < got.size(); ++j) EXPECT_NEAR(got[j], expected[j], 1e-9);
}

TEST(IterativeLogReg, LearnsSeparableData) {
  Cluster cluster(SmallCluster());
  Rng rng(17);
  std::vector<double> truth;
  std::string data = workload::GenerateLabeledPoints(rng, 400, 2, &truth);
  ASSERT_TRUE(cluster.dfs().Upload("samples", data).ok());

  auto spec = apps::LogRegIterations("lr", "samples", {0.0, 0.0, 0.0}, 25, 1.0);
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok());

  // Learned weights must classify the training set well.
  auto w = apps::ParseDoubles(result.final_state);
  int correct = 0, total = 0;
  for (const auto& line : apps::Split(data, '\n')) {
    auto p = apps::ParseLabeledPoint(line);
    if (p.features.empty()) continue;
    double z = w[0];
    for (std::size_t j = 0; j < p.features.size(); ++j) z += w[j + 1] * p.features[j];
    int pred = z > 0 ? 1 : 0;
    correct += (pred == static_cast<int>(p.label)) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(IterativePageRank, MatchesSerialPowerIteration) {
  Cluster cluster(SmallCluster());
  Rng rng(19);
  workload::GraphOptions gopts;
  gopts.num_nodes = 40;
  gopts.edges_per_node = 3;
  std::string graph = workload::GenerateGraph(rng, gopts);
  ASSERT_TRUE(cluster.dfs().Upload("graph", graph).ok());

  const int kIters = 3;
  auto spec = apps::PageRankIterations("pr", "graph", gopts.num_nodes, kIters);
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok());

  apps::PageRankState state;
  state.num_nodes = gopts.num_nodes;
  for (int i = 0; i < kIters; ++i) {
    state.ranks = apps::PageRankSerialStep(graph, state);
  }
  auto got = apps::DecodePageRankState(result.final_state);
  ASSERT_EQ(got.ranks.size(), state.ranks.size());
  double sum = 0.0;
  for (const auto& [node, rank] : got.ranks) {
    auto it = state.ranks.find(node);
    ASSERT_NE(it, state.ranks.end()) << node;
    EXPECT_NEAR(rank, it->second, 1e-9) << node;
    sum += rank;
  }
  EXPECT_GT(sum, 0.1);  // ranks are meaningful mass
}

TEST(IterativeDriverTest, ResumeContinuesFromPersistedState) {
  Cluster cluster(SmallCluster());
  Rng rng(23);
  workload::PointsOptions popts;
  popts.num_points = 150;
  std::string csv = workload::GeneratePoints(rng, popts);
  ASSERT_TRUE(cluster.dfs().Upload("points", csv).ok());

  apps::Centroids initial = {{20.0, 20.0}, {80.0, 80.0}};
  auto full = apps::KMeansIterations("km-resume", "points", initial, 4);

  // Run only 2 iterations (simulating a crash after persisting them).
  auto partial = full;
  partial.max_iterations = 2;
  IterativeDriver driver(cluster);
  auto first = driver.Run(partial);
  ASSERT_TRUE(first.status.ok());
  ASSERT_EQ(first.iterations_run, 2);

  // Resume with the full spec: should run exactly 2 more.
  auto resumed = driver.Resume(full);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.iterations_run, 4);

  // Final state must equal an uninterrupted 4-iteration run.
  auto points = ParsePoints(csv);
  apps::Centroids expected = initial;
  for (int i = 0; i < 4; ++i) expected = apps::KMeansSerialStep(points, expected);
  ExpectCentroidsNear(apps::DecodeCentroids(resumed.final_state), expected, 1e-6);
}

TEST(IterativeDriverTest, EarlyStopViaUpdateCallback) {
  Cluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.dfs().Upload("points", "1,1\n2,2\n").ok());
  auto spec = apps::KMeansIterations("km-stop", "points", {{0.0, 0.0}}, 10);
  auto inner = spec.update;
  int calls = 0;
  spec.update = [&calls, inner](const std::vector<KV>& out, const std::string& cur,
                                std::string* next) {
    inner(out, cur, next);
    return ++calls < 3;  // stop after 3 iterations
  };
  IterativeDriver driver(cluster);
  auto result = driver.Run(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.iterations_run, 3);
}

}  // namespace
}  // namespace eclipse::mr
