// Concurrent multi-job execution: the Submit/Wait/Cancel front end, the
// single-job-assumption regressions (same-name spill-scope collision), and
// cancellation hygiene — a cancelled job must leave the cluster fully
// reusable: no leaked slots, no orphan intermediates in the DHT FS, no
// job-private residue squatting in the caches.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/grep.h"
#include "apps/wordcount.h"
#include "common/rng.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

std::string MakeText(std::uint64_t seed, Bytes bytes = 20_KiB) {
  Rng rng(seed);
  workload::TextOptions topts;
  topts.target_bytes = bytes;
  topts.vocabulary = 60;
  return workload::GenerateText(rng, topts);
}

void ExpectWordCount(const mr::JobResult& result, const std::string& text) {
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  auto oracle = apps::WordCountSerial(text);
  ASSERT_EQ(result.output.size(), oracle.size());
  for (const auto& kv : result.output) {
    ASSERT_TRUE(oracle.count(kv.key)) << "unexpected key " << kv.key;
    EXPECT_EQ(kv.value, std::to_string(oracle.at(kv.key))) << kv.key;
  }
}

/// Every worker's full slot capacity must be back in the arbiter and no
/// user may be holding anything — the "no leaked slots" post-condition.
void ExpectAllSlotsFree(mr::Cluster& cluster) {
  for (int id : cluster.WorkerIds()) {
    if (cluster.worker(id).dead()) continue;
    EXPECT_EQ(cluster.arbiter().FreeSlots(id, sched::SlotKind::kMap),
              cluster.options().map_slots)
        << "worker " << id << " leaked a map slot";
    EXPECT_EQ(cluster.arbiter().FreeSlots(id, sched::SlotKind::kReduce),
              cluster.options().reduce_slots)
        << "worker " << id << " leaked a reduce slot";
  }
  EXPECT_EQ(cluster.arbiter().InUse(cluster.options().user), 0);
  EXPECT_EQ(cluster.arbiter().Waiting(), 0u);
}

/// No DHT-FS block and no cache entry anywhere may reference the cancelled
/// job's private spill scope ("im/j<job_id>/...").
void ExpectNoJobResidue(mr::Cluster& cluster, std::uint64_t job_id) {
  const std::string prefix = "im/j" + std::to_string(job_id) + "/";
  for (int id : cluster.WorkerIds()) {
    auto& w = cluster.worker(id);
    if (w.dead()) continue;
    for (const auto& info : w.dfs_node().blocks().List()) {
      EXPECT_NE(info.id.rfind(prefix, 0), 0u)
          << "orphan spill " << info.id << " on worker " << id;
    }
    for (const auto& entry : w.cache().Entries()) {
      EXPECT_NE(entry.id.rfind(prefix, 0), 0u)
          << "orphan cache entry " << entry.id << " on worker " << id;
    }
  }
}

TEST(JobQueue, SubmitWaitMatchesSoloRun) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 1_KiB;
  mr::Cluster cluster(opts);
  std::string text_a = MakeText(1);
  std::string text_b = MakeText(2);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());

  mr::JobHandle ha = cluster.Submit(apps::WordCountJob("wc-a", "a"));
  mr::JobHandle hb = cluster.Submit(apps::WordCountJob("wc-b", "b"));
  ASSERT_TRUE(ha.valid());
  ASSERT_TRUE(hb.valid());
  mr::JobResult ra = ha.Wait();
  mr::JobResult rb = hb.Wait();
  ExpectWordCount(ra, text_a);
  ExpectWordCount(rb, text_b);
  EXPECT_NE(ra.job_id, rb.job_id);
  EXPECT_EQ(ra.job_id, ha.job_id());
  // Wait is idempotent.
  EXPECT_EQ(ha.Wait().output.size(), ra.output.size());
  ExpectAllSlotsFree(cluster);
}

// The satellite-1 regression: before spill scopes were namespaced by
// job_id, two concurrent jobs with the same JobSpec::name shared the
// "im/<name>/..." scope and overwrote each other's intermediates. Same
// names, different inputs — both must match their own serial oracle.
TEST(JobQueue, SameJobNameDifferentInputsDoNotCollide) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  mr::Cluster cluster(opts);
  std::string text_a = MakeText(11);
  std::string text_b = MakeText(12);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());

  for (int round = 0; round < 3; ++round) {
    mr::JobSpec ja = apps::WordCountJob("wordcount", "a");
    mr::JobSpec jb = apps::WordCountJob("wordcount", "b");
    // Tiny spill threshold: many interleaved spill pushes per task, the
    // exact traffic pattern that exposed the shared-scope overwrites.
    ja.spill_threshold = 256;
    jb.spill_threshold = 256;
    mr::JobHandle ha = cluster.Submit(std::move(ja));
    mr::JobHandle hb = cluster.Submit(std::move(jb));
    ExpectWordCount(ha.Wait(), text_a);
    ExpectWordCount(hb.Wait(), text_b);
  }
}

// Sharper variant: same name, same input, different job *logic* — a grep
// and a word count. A name-keyed scope would mix their intermediates even
// with identical input traffic.
TEST(JobQueue, SameJobNameDifferentLogicDoNotCollide) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  mr::Cluster cluster(opts);
  std::string text = MakeText(21);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  mr::JobSpec wc = apps::WordCountJob("analytics", "corpus");
  mr::JobSpec gr = apps::GrepJob("analytics", "corpus", "w1");
  wc.spill_threshold = 256;
  gr.spill_threshold = 256;
  mr::JobHandle hw = cluster.Submit(std::move(wc));
  mr::JobHandle hg = cluster.Submit(std::move(gr));
  ExpectWordCount(hw.Wait(), text);

  mr::JobResult rg = hg.Wait();
  ASSERT_TRUE(rg.status.ok()) << rg.status.ToString();
  auto oracle = apps::GrepSerial(text, "w1");
  ASSERT_EQ(rg.output.size(), oracle.size());
  for (const auto& kv : rg.output) {
    ASSERT_TRUE(oracle.count(kv.key));
    EXPECT_EQ(kv.value, std::to_string(oracle.at(kv.key)));
  }
}

// Satellite 3: Delay scheduling's locality-wait budget is a per-call local
// deadline, so two concurrent Delay-mode jobs cannot consume each other's
// budgets — both must finish correctly (and promptly).
TEST(JobQueue, DelaySchedulerConcurrentJobs) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 1_KiB;
  opts.scheduler = mr::SchedulerKind::kDelay;
  mr::Cluster cluster(opts);
  std::string text_a = MakeText(31);
  std::string text_b = MakeText(32);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());

  mr::JobHandle ha = cluster.Submit(apps::WordCountJob("delay-a", "a"));
  mr::JobHandle hb = cluster.Submit(apps::WordCountJob("delay-b", "b"));
  ExpectWordCount(ha.Wait(), text_a);
  ExpectWordCount(hb.Wait(), text_b);
  ExpectAllSlotsFree(cluster);
}

TEST(JobQueue, CancelQueuedJobNeverStarts) {
  mr::ClusterOptions opts;
  opts.num_servers = 2;
  opts.block_size = 1_KiB;
  opts.max_concurrent_jobs = 1;  // force queueing
  mr::Cluster cluster(opts);
  std::string text = MakeText(41);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  mr::JobSpec slow = apps::WordCountJob("front", "corpus");
  auto base_mapper = slow.mapper;
  slow.mapper = [base_mapper] {
    class Slowed : public mr::Mapper {
     public:
      explicit Slowed(std::unique_ptr<mr::Mapper> inner) : inner_(std::move(inner)) {}
      void Map(std::string_view record, mr::MapContext& ctx) override {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        inner_->Map(record, ctx);
      }
      void Finish(mr::MapContext& ctx) override { inner_->Finish(ctx); }

     private:
      std::unique_ptr<mr::Mapper> inner_;
    };
    return std::unique_ptr<mr::Mapper>(new Slowed(base_mapper()));
  };
  mr::JobHandle front = cluster.Submit(std::move(slow));
  mr::JobHandle queued = cluster.Submit(apps::WordCountJob("queued", "corpus"));
  queued.Cancel();
  mr::JobResult cancelled = queued.Wait();
  EXPECT_EQ(cancelled.status.code(), ErrorCode::kCancelled);
  EXPECT_TRUE(cancelled.output.empty());
  ExpectWordCount(front.Wait(), text);
  ExpectAllSlotsFree(cluster);
}

// Satellite 4: cancel while the map phase is in full swing. The cluster
// must come back clean — result kCancelled, all slots returned, zero
// job-private residue in block stores or caches, and the next job green.
TEST(JobQueue, CancelMidMapLeavesClusterReusable) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  mr::Cluster cluster(opts);
  std::string text = MakeText(51, 40_KiB);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  mr::JobSpec job = apps::WordCountJob("doomed", "corpus");
  job.spill_threshold = 256;  // partial spills reach the DHT FS pre-cancel
  auto base_mapper = job.mapper;
  job.mapper = [base_mapper] {
    class Slowed : public mr::Mapper {
     public:
      explicit Slowed(std::unique_ptr<mr::Mapper> inner) : inner_(std::move(inner)) {}
      void Map(std::string_view record, mr::MapContext& ctx) override {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        inner_->Map(record, ctx);
      }
      void Finish(mr::MapContext& ctx) override { inner_->Finish(ctx); }

     private:
      std::unique_ptr<mr::Mapper> inner_;
    };
    return std::unique_ptr<mr::Mapper>(new Slowed(base_mapper()));
  };
  mr::JobHandle h = cluster.Submit(std::move(job));
  // Let the map wave start, then pull the plug mid-phase.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.arbiter().InUse(cluster.options().user) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(cluster.arbiter().InUse(cluster.options().user), 0) << "job never started";
  h.Cancel();
  mr::JobResult r = h.Wait();
  ASSERT_EQ(r.status.code(), ErrorCode::kCancelled) << r.status.ToString();

  ExpectAllSlotsFree(cluster);
  ExpectNoJobResidue(cluster, h.job_id());

  ExpectWordCount(cluster.Run(apps::WordCountJob("after", "corpus")), text);
  ExpectAllSlotsFree(cluster);
}

// Satellite 4, reduce side: cancel once reduce slots are in use.
TEST(JobQueue, CancelMidReduceLeavesClusterReusable) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 1_KiB;
  mr::Cluster cluster(opts);
  std::string text = MakeText(61);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  mr::JobSpec job = apps::WordCountJob("doomed-reduce", "corpus");
  job.spill_threshold = 256;
  auto base_reducer = job.reducer;
  job.reducer = [base_reducer] {
    class Slowed : public mr::Reducer {
     public:
      explicit Slowed(std::unique_ptr<mr::Reducer> inner) : inner_(std::move(inner)) {}
      void Reduce(std::string_view key, const std::vector<std::string_view>& values,
                  mr::ReduceContext& ctx) override {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        inner_->Reduce(key, values, ctx);
      }

     private:
      std::unique_ptr<mr::Reducer> inner_;
    };
    return std::unique_ptr<mr::Reducer>(new Slowed(base_reducer()));
  };
  mr::JobHandle h = cluster.Submit(std::move(job));
  // Wait for a reduce slot to be taken, then cancel mid-reduce.
  auto reduce_running = [&cluster] {
    for (int id : cluster.WorkerIds()) {
      if (cluster.arbiter().FreeSlots(id, sched::SlotKind::kReduce) <
          cluster.options().reduce_slots) {
        return true;
      }
    }
    return false;
  };
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!reduce_running() && !h.done() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.Cancel();
  mr::JobResult r = h.Wait();
  // The cancel may race the final reduce group; both terminal states must
  // leave the cluster clean.
  if (!r.status.ok()) {
    EXPECT_EQ(r.status.code(), ErrorCode::kCancelled) << r.status.ToString();
    ExpectNoJobResidue(cluster, h.job_id());
  }
  ExpectAllSlotsFree(cluster);

  ExpectWordCount(cluster.Run(apps::WordCountJob("after", "corpus")), text);
  ExpectAllSlotsFree(cluster);
}

// Destroying the cluster with jobs queued and running must not hang or
// crash: the queue cancels pending jobs and drains the runners.
TEST(JobQueue, DestructionWithInFlightJobs) {
  mr::ClusterOptions opts;
  opts.num_servers = 2;
  opts.block_size = 512;
  opts.max_concurrent_jobs = 2;
  std::vector<mr::JobHandle> handles;
  {
    mr::Cluster cluster(opts);
    ASSERT_TRUE(cluster.dfs().Upload("corpus", MakeText(71)).ok());
    for (int i = 0; i < 6; ++i) {
      handles.push_back(cluster.Submit(apps::WordCountJob("j" + std::to_string(i), "corpus")));
    }
    // Cluster (and its JobQueue) destroyed here with most jobs pending.
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.done()) << "queue shutdown left an unresolved job";
  }
}

// Per-user weighted sharing end to end: two users' jobs run concurrently
// and both finish correctly with per-user accounting drained to zero.
TEST(JobQueue, PerUserJobsShareCluster) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 1_KiB;
  opts.user_weights = {{"alice", 2.0}, {"bob", 1.0}};
  mr::Cluster cluster(opts);
  std::string text_a = MakeText(81);
  std::string text_b = MakeText(82);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());

  mr::JobSpec ja = apps::WordCountJob("wc", "a");
  ja.user = "alice";
  mr::JobSpec jb = apps::WordCountJob("wc", "b");
  jb.user = "bob";
  mr::JobHandle ha = cluster.Submit(std::move(ja));
  mr::JobHandle hb = cluster.Submit(std::move(jb));
  ExpectWordCount(ha.Wait(), text_a);
  ExpectWordCount(hb.Wait(), text_b);
  EXPECT_EQ(cluster.arbiter().InUse("alice"), 0);
  EXPECT_EQ(cluster.arbiter().InUse("bob"), 0);
}

}  // namespace
}  // namespace eclipse
