// Dynamic cluster growth: Cluster::AddServer places a newcomer on the ring,
// rebalances block/metadata ownership to it, retires ex-replica copies, and
// the grown cluster keeps serving reads and jobs.
#include <gtest/gtest.h>

#include <set>

#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse::mr {
namespace {

ClusterOptions BaseOptions(int servers) {
  ClusterOptions opts;
  opts.num_servers = servers;
  opts.block_size = 200;
  opts.cache_capacity = 1_MiB;
  return opts;
}

std::string SomeText(Bytes bytes = 6000) {
  Rng rng(55);
  workload::TextOptions topts;
  topts.target_bytes = bytes;
  return workload::GenerateText(rng, topts);
}

TEST(Join, NewServerTakesOverItsRanges) {
  Cluster cluster(BaseOptions(4));
  std::string text = SomeText();
  ASSERT_TRUE(cluster.dfs().Upload("f", text).ok());

  dfs::RecoveryReport report;
  int id = cluster.AddServer(&report);
  EXPECT_EQ(id, 4);
  EXPECT_EQ(cluster.ring().size(), 5u);

  // The newcomer owns some keys (5 servers, canonical positions) and must
  // hold every block whose replica set includes it.
  auto meta = cluster.dfs().GetMetadata("f").value();
  dht::Ring ring = cluster.ring();
  std::size_t newcomer_blocks = 0;
  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    auto replicas = ring.Replicas(meta.KeyOfBlock(b), 3);
    bool mine = std::find(replicas.begin(), replicas.end(), id) != replicas.end();
    std::string block_id = dfs::BlockId("f", b);
    EXPECT_EQ(cluster.worker(id).dfs_node().blocks().Contains(block_id), mine)
        << "block " << b;
    if (mine) ++newcomer_blocks;
  }
  EXPECT_GT(newcomer_blocks, 0u) << "30 blocks over 5 servers: some must move";
  EXPECT_GT(report.blocks_copied, 0u);
}

TEST(Join, ExtraneousCopiesRetired) {
  Cluster cluster(BaseOptions(4));
  std::string text = SomeText();
  ASSERT_TRUE(cluster.dfs().Upload("f", text).ok());
  cluster.AddServer();

  // After rebalance, every durable block lives on exactly its replica set.
  auto meta = cluster.dfs().GetMetadata("f").value();
  dht::Ring ring = cluster.ring();
  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    auto replicas = ring.Replicas(meta.KeyOfBlock(b), 3);
    std::set<int> expected(replicas.begin(), replicas.end());
    std::set<int> holders;
    std::string block_id = dfs::BlockId("f", b);
    for (int w : cluster.WorkerIds()) {
      if (cluster.worker(w).dfs_node().blocks().Contains(block_id)) holders.insert(w);
    }
    EXPECT_EQ(holders, expected) << "block " << b;
  }
}

TEST(Join, ReadAndJobAfterGrowth) {
  Cluster cluster(BaseOptions(3));
  std::string text = SomeText();
  ASSERT_TRUE(cluster.dfs().Upload("f", text).ok());
  cluster.AddServer();
  cluster.AddServer();

  auto back = cluster.dfs().ReadFile("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);

  JobResult result = cluster.Run(apps::WordCountJob("wc", "f"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.output.size(), apps::WordCountSerial(text).size());
}

TEST(Join, GrowThenShrinkKeepsData) {
  Cluster cluster(BaseOptions(4));
  std::string text = SomeText();
  ASSERT_TRUE(cluster.dfs().Upload("f", text).ok());

  int newcomer = cluster.AddServer();
  // Kill an ORIGINAL server: the newcomer's fresh replicas must hold.
  ASSERT_EQ(cluster.KillServer(0).blocks_lost, 0u);
  auto back = cluster.dfs().ReadFile("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);

  // And the newcomer itself can die too.
  ASSERT_EQ(cluster.KillServer(newcomer).blocks_lost, 0u);
  back = cluster.dfs().ReadFile("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);
}

TEST(Join, MembershipAgentsLearnOfNewcomer) {
  ClusterOptions opts = BaseOptions(3);
  opts.start_membership = true;
  opts.membership.heartbeat_interval = std::chrono::milliseconds(10);
  Cluster cluster(opts);
  int id = cluster.AddServer();

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool spread = false;
  while (std::chrono::steady_clock::now() < deadline && !spread) {
    spread = true;
    for (int w : {0, 1, 2}) {
      auto* agent = cluster.membership(w);
      ASSERT_NE(agent, nullptr);
      if (!agent->ring_view().Contains(id)) spread = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(spread);
}

}  // namespace
}  // namespace eclipse::mr
