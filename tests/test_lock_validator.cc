// The runtime lock-order validator's executable contract
// (common/mutex.h + common/lock_rank.h, handbook: docs/static-analysis.md):
//
//  * a rank inversion aborts, and the report names BOTH locks and ranks
//    (death tests below pin the message format eclipse-lint's and the
//    handbook's examples show),
//  * a correctly ordered nested acquisition chain is silent,
//  * CondVar waits re-acquire through the validator without tripping it,
//  * try_lock is exempt from the order check (non-blocking),
//  * the hierarchy's three machine-readable representations — the enum,
//    tools/lock_hierarchy.json, and the docs rank table — agree (the same
//    grep-based doc-consistency idiom as docs/fault-tolerance.md's test).
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace eclipse {
namespace {

#if ECLIPSE_LOCK_VALIDATOR_ENABLED

TEST(LockValidatorDeath, RankInversionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low{Rank::kClusterWorkers, "test.inversion_low"};
  Mutex high{Rank::kCacheLru, "test.inversion_high"};
  // Acquiring the lower-ranked lock while holding the higher-ranked one is
  // the seeded inversion; the report must carry both names and both ranks,
  // so an operator can fix the site without reproducing the interleaving.
  EXPECT_DEATH(
      {
        MutexLock a(high);
        MutexLock b(low);
      },
      "lock-order violation.*test\\.inversion_low.*rank 200"
      ".*test\\.inversion_high.*rank 640");
}

TEST(LockValidatorDeath, EqualRankAbortsToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{Rank::kTest, "test.equal_a"};
  Mutex b{Rank::kTest, "test.equal_b"};
  // Strictly greater means equal ranks may never nest either — two
  // same-band locks held together would deadlock under opposite orders.
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock-order violation.*test\\.equal_b.*test\\.equal_a");
}

TEST(LockValidatorDeath, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{Rank::kTest, "test.recursive"};
  EXPECT_DEATH(
      {
        MutexLock outer(mu);
        mu.lock();  // same mutex, same thread: always a bug
      },
      "recursive acquisition.*test\\.recursive");
}

TEST(LockValidator, OrderedNestedAcquisitionIsSilent) {
  // The full documented chain, outermost to leaf-most, nested at once —
  // exactly what the hierarchy licenses. Must run to completion.
  Mutex q{Rank::kJobQueue, "test.pass.q"};
  Mutex w{Rank::kClusterWorkers, "test.pass.w"};
  Mutex r{Rank::kClusterRing, "test.pass.r"};
  Mutex s{Rank::kClusterSched, "test.pass.s"};
  Mutex leaf{Rank::kMetrics, "test.pass.leaf"};
  int touched = 0;
  {
    MutexLock l1(q);
    MutexLock l2(w);
    MutexLock l3(r);
    MutexLock l4(s);
    MutexLock l5(leaf);
    ++touched;
  }
  ASSERT_EQ(lock_order::HeldDepth(), 0) << "stack must drain on scope exit";
  // Re-acquiring after release is fine (the rule is per held-stack, not
  // per history).
  {
    MutexLock l5(leaf);
    ++touched;
  }
  {
    MutexLock l1(q);
    ++touched;
  }
  EXPECT_EQ(touched, 3);
  EXPECT_EQ(lock_order::HeldDepth(), 0);
}

TEST(LockValidator, CondVarWaitReacquiresThroughTheValidator) {
  Mutex outer{Rank::kJobQueue, "test.cv.outer"};
  Mutex inner{Rank::kSlotArbiter, "test.cv.inner"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock l(inner);
    ready = true;
    cv.notify_one();
  });
  {
    // Wait on the *inner* lock while the outer is held: the internal
    // unlock/relock of `inner` flows through MutexLock::lock/unlock, so
    // the re-acquire is rank-checked against the still-held outer lock —
    // and passes, because 520 > 100.
    MutexLock lo(outer);
    MutexLock li(inner);
    while (!ready) cv.wait(li);
  }
  waker.join();
  EXPECT_EQ(lock_order::HeldDepth(), 0);
}

TEST(LockValidator, TryLockIsExemptFromTheOrderCheck) {
  Mutex low{Rank::kClusterWorkers, "test.try.low"};
  Mutex high{Rank::kCacheLru, "test.try.high"};
  MutexLock l(high);
  // A blocking lock of `low` here would abort; try_lock cannot contribute
  // a hold-and-wait edge, so it is allowed — but it joins the held stack.
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(lock_order::HeldDepth(), 2);
  low.unlock();
  EXPECT_EQ(lock_order::HeldDepth(), 1);
}

TEST(LockValidator, StacksArePerThread) {
  // One thread holding a leaf lock must not constrain another thread's
  // outermost acquisition.
  Mutex leaf{Rank::kTraceLog, "test.tls.leaf"};
  Mutex outer{Rank::kJobQueue, "test.tls.outer"};
  MutexLock l(leaf);
  std::thread t([&] {
    MutexLock lo(outer);  // rank 100 < 930, but on a fresh thread: fine
    EXPECT_EQ(lock_order::HeldDepth(), 1);
  });
  t.join();
  EXPECT_EQ(lock_order::HeldDepth(), 1);
}

#else  // !ECLIPSE_LOCK_VALIDATOR_ENABLED

TEST(LockValidator, CompiledOutInThisBuild) {
  // Release builds compile the validator out; nothing to exercise, but the
  // suite still records that this configuration was the compiled-out one.
  Mutex mu{Rank::kTest, "test.release"};
  MutexLock l(mu);
  SUCCEED();
}

#endif  // ECLIPSE_LOCK_VALIDATOR_ENABLED

// ---------------------------------------------------------------------------
// Hierarchy doc/manifest consistency (grep-based, mirrors
// FaultInjection.HandbookDocumentsEveryKnob).
// ---------------------------------------------------------------------------

std::string ReadRepoFile(const std::string& rel) {
  std::ifstream in(std::string(ECLIPSE_SOURCE_DIR) + "/" + rel);
  EXPECT_TRUE(in.good()) << rel << " missing";
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::pair<std::string, int>> EnumRanks() {
  // Parse `kName = value,` out of lock_rank.h — the same lexical contract
  // eclipse-lint relies on.
  std::vector<std::pair<std::string, int>> ranks;
  const std::string header = ReadRepoFile("src/common/lock_rank.h");
  std::regex entry(R"((k\w+)\s*=\s*(\d+)\s*,)");
  for (auto it = std::sregex_iterator(header.begin(), header.end(), entry);
       it != std::sregex_iterator(); ++it) {
    if ((*it)[1] == "kLeafRankFloor") continue;
    ranks.emplace_back((*it)[1], std::stoi((*it)[2]));
  }
  return ranks;
}

TEST(LockHierarchyDocs, ManifestAndDocsCoverEveryRank) {
  const std::string manifest = ReadRepoFile("tools/lock_hierarchy.json");
  const std::string docs = ReadRepoFile("docs/static-analysis.md");
  auto ranks = EnumRanks();
  ASSERT_GE(ranks.size(), 25u) << "rank parse failure or hierarchy shrank";
  int prev = -1;
  for (const auto& [name, value] : ranks) {
    EXPECT_GT(value, prev) << "ranks must be strictly increasing: " << name;
    prev = value;
    EXPECT_NE(manifest.find("\"" + name + "\""), std::string::npos)
        << "tools/lock_hierarchy.json does not list rank " << name;
    EXPECT_NE(docs.find("`" + name + "`"), std::string::npos)
        << "docs/static-analysis.md rank table does not list " << name;
  }
}

TEST(LockHierarchyDocs, ArchitectureReferencesTheManifest) {
  const std::string arch = ReadRepoFile("docs/architecture.md");
  EXPECT_NE(arch.find("tools/lock_hierarchy.json"), std::string::npos)
      << "docs/architecture.md must point at the manifest as the source of "
         "truth for the lock hierarchy";
  EXPECT_NE(arch.find("docs/static-analysis.md"), std::string::npos)
      << "docs/architecture.md must hand off to the static-analysis handbook";
}

TEST(LockHierarchyDocs, HandbookDocumentsEveryLintRule) {
  const std::string docs = ReadRepoFile("docs/static-analysis.md");
  const char* rules[] = {
      "mutex-rank",    "lock-order",       "blocking-call", "std-mutex",
      "hotpath-new",   "hotpath-pushback", "hotpath-tostring",
      "manifest",      "ECLIPSE_HOT_PATH", "ECLIPSE_LOCK_VALIDATOR",
      "allow(",        "--check-manifest", "--print-docs-table",
  };
  for (const char* rule : rules) {
    EXPECT_NE(docs.find(rule), std::string::npos)
        << "docs/static-analysis.md does not mention `" << rule << "`";
  }
}

}  // namespace
}  // namespace eclipse
