#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include "cache/cache_node.h"
#include "net/transport.h"

namespace eclipse::cache {
namespace {

TEST(LruCache, PutGetHitMiss) {
  LruCache c(100);
  EXPECT_TRUE(c.Put("a", 1, "hello", EntryKind::kInput));
  auto got = c.Get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
  EXPECT_FALSE(c.Get("b").has_value());
  auto s = c.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_DOUBLE_EQ(s.HitRatio(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(10);
  c.Put("a", 1, "1234", EntryKind::kInput);   // 4 bytes
  c.Put("b", 2, "5678", EntryKind::kInput);   // 8 total
  c.Get("a");                                  // promote a
  c.Put("c", 3, "abcd", EntryKind::kInput);   // needs eviction: b goes
  EXPECT_TRUE(c.Contains("a"));
  EXPECT_FALSE(c.Contains("b"));
  EXPECT_TRUE(c.Contains("c"));
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_LE(c.used(), c.capacity());
}

TEST(LruCache, RejectsOversizedObject) {
  LruCache c(4);
  EXPECT_FALSE(c.Put("big", 1, "12345", EntryKind::kInput));
  EXPECT_EQ(c.Count(), 0u);
}

TEST(LruCache, ZeroCapacityCachesNothing) {
  LruCache c(0);
  EXPECT_FALSE(c.Put("a", 1, "x", EntryKind::kInput));
  EXPECT_FALSE(c.Get("a").has_value());
}

TEST(LruCache, OverwriteUpdatesBytes) {
  LruCache c(100);
  c.Put("a", 1, "12345678", EntryKind::kInput);
  c.Put("a", 1, "12", EntryKind::kInput);
  EXPECT_EQ(c.used(), 2u);
  EXPECT_EQ(c.Count(), 1u);
}

TEST(LruCache, PerPartitionStats) {
  LruCache c(1000);
  c.Put("in", 1, "x", EntryKind::kInput);
  c.Put("out", 2, "y", EntryKind::kOutput);
  c.Get("in");
  c.Get("out");
  c.Get("out");
  EXPECT_EQ(c.stats(EntryKind::kInput).hits, 1u);
  EXPECT_EQ(c.stats(EntryKind::kOutput).hits, 2u);
  EXPECT_EQ(c.stats().hits, 3u);
}

TEST(LruCache, ResizeEvicts) {
  LruCache c(100);
  c.Put("a", 1, std::string(40, 'a'), EntryKind::kInput);
  c.Put("b", 2, std::string(40, 'b'), EntryKind::kInput);
  c.Resize(50);
  EXPECT_FALSE(c.Contains("a"));  // LRU victim
  EXPECT_TRUE(c.Contains("b"));
  EXPECT_EQ(c.capacity(), 50u);
}

TEST(LruCache, ExtractRangePullsOnlyInRange) {
  LruCache c(1000);
  c.Put("low", 100, "L", EntryKind::kInput);
  c.Put("mid", 500, "M", EntryKind::kOutput);
  c.Put("high", 900, "H", EntryKind::kInput);
  auto moved = c.ExtractRange(KeyRange{400, 600, false});
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].first.id, "mid");
  EXPECT_EQ(moved[0].first.kind, EntryKind::kOutput);
  EXPECT_EQ(moved[0].second, "M");
  EXPECT_FALSE(c.Contains("mid"));
  EXPECT_TRUE(c.Contains("low"));
  EXPECT_TRUE(c.Contains("high"));
  EXPECT_EQ(c.used(), 2u);
}

TEST(LruCache, PlaceholderAccountsSizeWithoutPayload) {
  LruCache c(100);
  EXPECT_TRUE(c.PutPlaceholder("blk", 1, 60, EntryKind::kInput));
  EXPECT_EQ(c.used(), 60u);
  auto got = c.Get("blk");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
  // A second 60-byte placeholder evicts the first.
  EXPECT_TRUE(c.PutPlaceholder("blk2", 2, 60, EntryKind::kInput));
  EXPECT_FALSE(c.Contains("blk"));
}

TEST(LruCache, EntriesMostRecentFirst) {
  LruCache c(1000);
  c.Put("a", 1, "1", EntryKind::kInput);
  c.Put("b", 2, "2", EntryKind::kInput);
  c.Get("a");
  auto entries = c.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, "a");
  EXPECT_EQ(entries[1].id, "b");
}

TEST(CacheNodeTest, RemoteFetch) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode node(1, d, 1000);
  transport.Register(1, d.AsHandler());
  node.local().Put("obj", 5, "cached-data", EntryKind::kOutput);

  CacheClient client(0, transport);
  auto got = client.FetchFrom(1, "obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "cached-data");
  EXPECT_FALSE(client.FetchFrom(1, "missing").has_value());
  EXPECT_FALSE(client.FetchFrom(9, "obj").has_value());  // dead peer
}

TEST(CacheNodeTest, MigrateRangeMovesEntries) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode donor(1, d, 1000);
  transport.Register(1, d.AsHandler());
  donor.local().Put("in-range", 500, "A", EntryKind::kInput);
  donor.local().Put("out-of-range", 50, "B", EntryKind::kInput);

  LruCache mine(1000);
  CacheClient client(0, transport);
  std::size_t moved = client.MigrateRange(1, KeyRange{400, 600, false}, mine);
  EXPECT_EQ(moved, 1u);
  EXPECT_TRUE(mine.Contains("in-range"));
  EXPECT_FALSE(mine.Contains("out-of-range"));
  EXPECT_FALSE(donor.local().Contains("in-range"));
  EXPECT_TRUE(donor.local().Contains("out-of-range"));
}

}  // namespace
}  // namespace eclipse::cache
