#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include "cache/cache_node.h"
#include "net/transport.h"

namespace eclipse::cache {
namespace {

TEST(LruCache, PutGetHitMiss) {
  LruCache c(100);
  EXPECT_TRUE(c.Put("a", 1, "hello", EntryKind::kInput));
  CacheValue got = c.Get("a", EntryKind::kInput);
  ASSERT_TRUE(got != nullptr);
  EXPECT_EQ(*got, "hello");
  EXPECT_EQ(c.Get("b", EntryKind::kInput), nullptr);
  auto s = c.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_DOUBLE_EQ(s.HitRatio(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(10);
  c.Put("a", 1, "1234", EntryKind::kInput);   // 4 bytes
  c.Put("b", 2, "5678", EntryKind::kInput);   // 8 total
  c.Get("a", EntryKind::kInput);               // promote a
  c.Put("c", 3, "abcd", EntryKind::kInput);   // needs eviction: b goes
  EXPECT_TRUE(c.Contains("a"));
  EXPECT_FALSE(c.Contains("b"));
  EXPECT_TRUE(c.Contains("c"));
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_LE(c.used(), c.capacity());
}

TEST(LruCache, RejectsOversizedObject) {
  LruCache c(4);
  EXPECT_FALSE(c.Put("big", 1, "12345", EntryKind::kInput));
  EXPECT_EQ(c.Count(), 0u);
}

TEST(LruCache, ZeroCapacityCachesNothing) {
  LruCache c(0);
  EXPECT_FALSE(c.Put("a", 1, "x", EntryKind::kInput));
  EXPECT_EQ(c.Get("a", EntryKind::kInput), nullptr);
}

TEST(LruCache, OverwriteUpdatesBytes) {
  LruCache c(100);
  c.Put("a", 1, "12345678", EntryKind::kInput);
  c.Put("a", 1, "12", EntryKind::kInput);
  EXPECT_EQ(c.used(), 2u);
  EXPECT_EQ(c.Count(), 1u);
}

TEST(LruCache, PerPartitionStats) {
  LruCache c(1000);
  c.Put("in", 1, "x", EntryKind::kInput);
  c.Put("out", 2, "y", EntryKind::kOutput);
  c.Get("in", EntryKind::kInput);
  c.Get("out", EntryKind::kOutput);
  c.Get("out", EntryKind::kOutput);
  EXPECT_EQ(c.stats(EntryKind::kInput).hits, 1u);
  EXPECT_EQ(c.stats(EntryKind::kOutput).hits, 2u);
  EXPECT_EQ(c.stats().hits, 3u);
}

// Regression: misses used to be charged to the iCache partition regardless
// of what the caller was looking for, understating oCache miss traffic.
TEST(LruCache, MissChargedToExpectedKind) {
  LruCache c(1000);
  EXPECT_EQ(c.Get("nope", EntryKind::kOutput), nullptr);
  EXPECT_EQ(c.stats(EntryKind::kOutput).misses, 1u);
  EXPECT_EQ(c.stats(EntryKind::kInput).misses, 0u);
  EXPECT_EQ(c.Get("nada", EntryKind::kInput), nullptr);
  EXPECT_EQ(c.stats(EntryKind::kInput).misses, 1u);
}

// Regression: ResetStats used to clear hard-coded slots [0] and [1]; it must
// clear every partition it reports.
TEST(LruCache, ResetStatsClearsAllPartitions) {
  LruCache c(1000);
  c.Put("in", 1, "x", EntryKind::kInput);
  c.Put("out", 2, "y", EntryKind::kOutput);
  c.Get("in", EntryKind::kInput);
  c.Get("out", EntryKind::kOutput);
  c.Get("miss", EntryKind::kOutput);
  c.ResetStats();
  for (auto kind : {EntryKind::kInput, EntryKind::kOutput}) {
    auto s = c.stats(kind);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.inserts, 0u);
    EXPECT_EQ(s.evictions, 0u);
  }
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(LruCache, ResizeEvicts) {
  LruCache c(100);
  c.Put("a", 1, std::string(40, 'a'), EntryKind::kInput);
  c.Put("b", 2, std::string(40, 'b'), EntryKind::kInput);
  c.Resize(50);
  EXPECT_FALSE(c.Contains("a"));  // LRU victim
  EXPECT_TRUE(c.Contains("b"));
  EXPECT_EQ(c.capacity(), 50u);
}

TEST(LruCache, ExtractRangePullsOnlyInRange) {
  LruCache c(1000);
  c.Put("low", 100, "L", EntryKind::kInput);
  c.Put("mid", 500, "M", EntryKind::kOutput);
  c.Put("high", 900, "H", EntryKind::kInput);
  auto moved = c.ExtractRange(KeyRange{400, 600, false});
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].first.id, "mid");
  EXPECT_EQ(moved[0].first.kind, EntryKind::kOutput);
  ASSERT_TRUE(moved[0].second != nullptr);
  EXPECT_EQ(*moved[0].second, "M");
  EXPECT_FALSE(c.Contains("mid"));
  EXPECT_TRUE(c.Contains("low"));
  EXPECT_TRUE(c.Contains("high"));
  EXPECT_EQ(c.used(), 2u);
}

TEST(LruCache, PlaceholderAccountsSizeWithoutPayload) {
  LruCache c(100);
  EXPECT_TRUE(c.PutPlaceholder("blk", 1, 60, EntryKind::kInput));
  EXPECT_EQ(c.used(), 60u);
  // A second 60-byte placeholder evicts the first.
  EXPECT_TRUE(c.PutPlaceholder("blk2", 2, 60, EntryKind::kInput));
  EXPECT_FALSE(c.Contains("blk"));
}

// Regression: Get used to hand placeholder entries (no payload, nonzero
// size) to data-path callers as real hits with an empty string. It must
// miss; the Touch probe is where a placeholder still counts as resident.
TEST(LruCache, GetSkipsPlaceholdersTouchSeesThem) {
  LruCache c(100);
  ASSERT_TRUE(c.PutPlaceholder("blk", 1, 60, EntryKind::kInput));
  EXPECT_EQ(c.Get("blk", EntryKind::kInput), nullptr);
  EXPECT_EQ(c.stats(EntryKind::kInput).misses, 1u);
  EXPECT_TRUE(c.Touch("blk", EntryKind::kInput));
  EXPECT_EQ(c.stats(EntryKind::kInput).hits, 1u);
  EXPECT_FALSE(c.Touch("absent", EntryKind::kInput));
  // Backfilling the placeholder with real bytes turns Get into a hit.
  ASSERT_TRUE(c.Put("blk", 1, std::string(60, 'x'), EntryKind::kInput));
  CacheValue got = c.Get("blk", EntryKind::kInput);
  ASSERT_TRUE(got != nullptr);
  EXPECT_EQ(got->size(), 60u);
}

// Zero-copy contract: repeated hits return the same shared block, and a
// handle taken before an eviction keeps the bytes alive afterwards.
TEST(LruCache, GetReturnsSharedHandleNotACopy) {
  LruCache c(1000);
  c.Put("a", 1, "same-bytes", EntryKind::kInput);
  CacheValue first = c.Get("a", EntryKind::kInput);
  CacheValue second = c.Get("a", EntryKind::kInput);
  ASSERT_TRUE(first != nullptr);
  EXPECT_EQ(first.get(), second.get());  // one block, two refcounts
}

TEST(LruCache, EvictionKeepsOutstandingReadersAlive) {
  LruCache c(10);
  c.Put("a", 1, "0123456789", EntryKind::kInput);
  CacheValue held = c.Get("a", EntryKind::kInput);
  ASSERT_TRUE(held != nullptr);
  c.Put("b", 2, "9876543210", EntryKind::kInput);  // evicts a entirely
  EXPECT_FALSE(c.Contains("a"));
  EXPECT_EQ(*held, "0123456789");  // reader unaffected by the eviction
  EXPECT_EQ(held.use_count(), 1);  // cache dropped its reference
}

TEST(LruCache, PutSharedHandleDoesNotCopy) {
  LruCache c(1000);
  auto block = std::make_shared<const std::string>("shared-block");
  ASSERT_TRUE(c.Put("a", 1, block, EntryKind::kOutput));
  CacheValue got = c.Get("a", EntryKind::kOutput);
  EXPECT_EQ(got.get(), block.get());  // cache stored the same object
}

TEST(LruCache, EntriesMostRecentFirst) {
  LruCache c(1000);
  c.Put("a", 1, "1", EntryKind::kInput);
  c.Put("b", 2, "2", EntryKind::kInput);
  c.Get("a", EntryKind::kInput);
  auto entries = c.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, "a");
  EXPECT_EQ(entries[1].id, "b");
}

TEST(CacheNodeTest, RemoteFetch) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode node(1, d, 1000);
  transport.Register(1, d.AsHandler());
  node.local().Put("obj", 5, "cached-data", EntryKind::kOutput);

  CacheClient client(0, transport);
  CacheValue got = client.FetchFrom(1, "obj");
  ASSERT_TRUE(got != nullptr);
  EXPECT_EQ(*got, "cached-data");
  EXPECT_EQ(client.FetchFrom(1, "missing"), nullptr);
  EXPECT_EQ(client.FetchFrom(9, "obj"), nullptr);  // dead peer
}

TEST(CacheNodeTest, RemoteFetchSkipsPlaceholders) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode node(1, d, 1000);
  transport.Register(1, d.AsHandler());
  node.local().PutPlaceholder("ph", 5, 64, EntryKind::kOutput);

  CacheClient client(0, transport);
  // A placeholder has no bytes to serve; the peer must answer not-found
  // rather than an empty payload masquerading as the block.
  EXPECT_EQ(client.FetchFrom(1, "ph"), nullptr);
}

TEST(CacheNodeTest, MigrateRangeMovesEntries) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode donor(1, d, 1000);
  transport.Register(1, d.AsHandler());
  donor.local().Put("in-range", 500, "A", EntryKind::kInput);
  donor.local().Put("out-of-range", 50, "B", EntryKind::kInput);

  LruCache mine(1000);
  CacheClient client(0, transport);
  std::size_t moved = client.MigrateRange(1, KeyRange{400, 600, false}, mine);
  EXPECT_EQ(moved, 1u);
  EXPECT_TRUE(mine.Contains("in-range"));
  EXPECT_FALSE(mine.Contains("out-of-range"));
  EXPECT_FALSE(donor.local().Contains("in-range"));
  EXPECT_TRUE(donor.local().Contains("out-of-range"));
}

TEST(CacheNodeTest, MigrateRangePreservesPlaceholders) {
  net::InProcessTransport transport;
  net::Dispatcher d;
  CacheNode donor(1, d, 1000);
  transport.Register(1, d.AsHandler());
  donor.local().PutPlaceholder("ph", 500, 64, EntryKind::kInput);

  LruCache mine(1000);
  CacheClient client(0, transport);
  std::size_t moved = client.MigrateRange(1, KeyRange{400, 600, false}, mine);
  EXPECT_EQ(moved, 1u);
  // Still a placeholder on the receiving side: size accounted, no payload.
  EXPECT_TRUE(mine.Contains("ph"));
  EXPECT_EQ(mine.used(), 64u);
  EXPECT_EQ(mine.Get("ph", EntryKind::kInput), nullptr);
  EXPECT_TRUE(mine.Touch("ph", EntryKind::kInput));
}

}  // namespace
}  // namespace eclipse::cache
