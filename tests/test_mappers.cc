// Unit tests for every application's Mapper/Reducer against fake contexts —
// the emission-level contracts the engine integration tests build on.
#include <gtest/gtest.h>

#include <map>

#include "apps/grep.h"
#include "apps/inverted_index.h"
#include "apps/kmeans.h"
#include "apps/logreg.h"
#include "apps/pagerank.h"
#include "apps/sort.h"
#include "apps/text_util.h"
#include "apps/wordcount.h"

namespace eclipse::apps {
namespace {

class FakeMapContext : public mr::MapContext {
 public:
  explicit FakeMapContext(std::string state = {}) : state_(std::move(state)) {}
  void Emit(std::string_view key, std::string_view value) override {
    emitted.push_back({std::string(key), std::string(value)});
  }
  const std::string& shared_state() const override { return state_; }
  std::vector<mr::KV> emitted;

 private:
  std::string state_;
};

class FakeReduceContext : public mr::ReduceContext {
 public:
  void Emit(std::string_view key, std::string_view value) override {
    emitted.push_back({std::string(key), std::string(value)});
  }
  std::vector<mr::KV> emitted;
};

TEST(WordCountMapper_, CombinesInMapperAndEmitsOnFinish) {
  WordCountMapper m;
  FakeMapContext ctx;
  m.Map("a b a", ctx);
  m.Map("b a", ctx);
  EXPECT_TRUE(ctx.emitted.empty()) << "in-mapper combining defers emission";
  m.Finish(ctx);
  std::map<std::string, std::string> got;
  for (auto& kv : ctx.emitted) got[kv.key] = kv.value;
  EXPECT_EQ(got["a"], "3");
  EXPECT_EQ(got["b"], "2");
  // A second block through the same instance starts fresh.
  m.Map("z", ctx);
  ctx.emitted.clear();
  m.Finish(ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].key, "z");
  EXPECT_EQ(ctx.emitted[0].value, "1");
}

TEST(WordCountReducer_, SumsPartials) {
  WordCountReducer r;
  FakeReduceContext ctx;
  r.Reduce("word", {"3", "4", "10"}, ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].value, "17");
}

TEST(GrepMapper_, PatternComesFromSharedState) {
  GrepMapper m;
  FakeMapContext ctx("needle");
  m.Map("hay needle stack", ctx);
  m.Map("just hay", ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].key, "hay needle stack");
  EXPECT_EQ(ctx.emitted[0].value, "1");
}

TEST(InvertedIndexMapper_, EmitsDocPerWordAndSkipsMalformed) {
  InvertedIndexMapper m;
  FakeMapContext ctx;
  m.Map("doc7\tfoo bar foo", ctx);
  m.Map("no tab here", ctx);  // malformed: ignored
  ASSERT_EQ(ctx.emitted.size(), 3u);
  for (auto& kv : ctx.emitted) EXPECT_EQ(kv.value, "doc7");
}

TEST(InvertedIndexReducer_, DedupsAndSortsPostings) {
  InvertedIndexReducer r;
  FakeReduceContext ctx;
  r.Reduce("foo", {"d2", "d1", "d2", "d1", "d3"}, ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].value, "d1 d2 d3");
}

TEST(SortMapper_, SplitsFirstField) {
  SortMapper m;
  FakeMapContext ctx;
  m.Map("key1 rest of line", ctx);
  m.Map("lonely", ctx);
  ASSERT_EQ(ctx.emitted.size(), 2u);
  EXPECT_EQ(ctx.emitted[0].key, "key1");
  EXPECT_EQ(ctx.emitted[0].value, "rest of line");
  EXPECT_EQ(ctx.emitted[1].key, "lonely");
  EXPECT_EQ(ctx.emitted[1].value, "");
}

TEST(KMeansMapper_, EmitsPerClusterPartialSums) {
  KMeansMapper m;
  FakeMapContext ctx(EncodeCentroids({{0.0, 0.0}, {10.0, 10.0}}));
  m.Map("1,1", ctx);
  m.Map("2,0", ctx);
  m.Map("9,9", ctx);
  m.Finish(ctx);
  ASSERT_EQ(ctx.emitted.size(), 2u);
  std::map<std::string, std::string> got;
  for (auto& kv : ctx.emitted) got[kv.key] = kv.value;
  // Cluster 0: 2 points summing (3,1); cluster 1: 1 point (9,9).
  EXPECT_EQ(got["c0"].substr(0, 2), "2|");
  EXPECT_EQ(got["c1"].substr(0, 2), "1|");
  auto sums0 = ParseDoubles(std::string_view(got["c0"]).substr(2));
  EXPECT_DOUBLE_EQ(sums0[0], 3.0);
  EXPECT_DOUBLE_EQ(sums0[1], 1.0);
}

TEST(KMeansReducer_, AveragesPartials) {
  KMeansReducer r;
  FakeReduceContext ctx;
  r.Reduce("c0", {"2|4,6", "2|0,2"}, ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  auto centroid = ParseDoubles(ctx.emitted[0].value);
  EXPECT_DOUBLE_EQ(centroid[0], 1.0);  // (4+0)/4
  EXPECT_DOUBLE_EQ(centroid[1], 2.0);  // (6+2)/4
}

TEST(PageRankMapper_, EmitsSharesAndSelfMarker) {
  PageRankState state;
  state.num_nodes = 4;
  state.ranks["a"] = 0.4;
  PageRankMapper m;
  FakeMapContext ctx(EncodePageRankState(state));
  m.Map("a b c", ctx);
  ASSERT_EQ(ctx.emitted.size(), 3u);
  EXPECT_EQ(ctx.emitted[0].key, "a");
  EXPECT_EQ(ctx.emitted[0].value, "N=4");
  EXPECT_EQ(ctx.emitted[1].key, "b");
  EXPECT_DOUBLE_EQ(std::stod(ctx.emitted[1].value), 0.2);  // 0.4 / 2 out-links
  EXPECT_EQ(ctx.emitted[2].key, "c");
}

TEST(PageRankReducer_, AppliesDamping) {
  PageRankReducer r;
  FakeReduceContext ctx;
  r.Reduce("x", {"N=4", "0.2", "0.1"}, ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  double rank = std::stod(ctx.emitted[0].value);
  EXPECT_NEAR(rank, 0.15 / 4 + 0.85 * 0.3, 1e-12);
}

TEST(LogRegMapper_, EmitsOneGradientPartialPerBlock) {
  LogRegMapper m;
  FakeMapContext ctx(JoinDoubles({0.0, 0.0}));  // bias + 1 weight
  m.Map("1 2.0", ctx);
  m.Map("0 -2.0", ctx);
  m.Finish(ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].key, "grad");
  EXPECT_EQ(ctx.emitted[0].value.substr(0, 2), "2|");
  // Symmetric points at zero weights: bias gradient cancels, w1 gradient
  // is -0.5*2 + 0.5*(-2)... (sigmoid(0)-1)*2 + (sigmoid(0)-0)*(-2) = -2.
  auto grad = ParseDoubles(std::string_view(ctx.emitted[0].value).substr(2));
  EXPECT_NEAR(grad[0], 0.0, 1e-12);
  EXPECT_NEAR(grad[1], -2.0, 1e-12);
}

TEST(LogRegReducer_, SumsCountsAndVectors) {
  LogRegReducer r;
  FakeReduceContext ctx;
  r.Reduce("grad", {"3|1,2", "2|3,4"}, ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].value.substr(0, 2), "5|");
  auto sum = ParseDoubles(std::string_view(ctx.emitted[0].value).substr(2));
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 6.0);
}

}  // namespace
}  // namespace eclipse::apps
