#include "dht/membership.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

namespace eclipse::dht {
namespace {

using namespace std::chrono_literals;

struct TestNode {
  explicit TestNode(int id, net::Transport& t, MembershipConfig cfg = {}) {
    agent = std::make_unique<MembershipAgent>(id, t, dispatcher, cfg);
  }
  net::Dispatcher dispatcher;
  std::unique_ptr<MembershipAgent> agent;
};

class MembershipTest : public ::testing::Test {
 protected:
  // Join every heartbeat thread before any node is destroyed: a live thread
  // pinging an already-destroyed peer would be use-after-free.
  void TearDown() override {
    for (auto& node : nodes) node->agent->Stop();
  }

  void Boot(int n, MembershipConfig cfg = {.heartbeat_interval = 10ms, .miss_threshold = 2}) {
    Ring ring;
    for (int i = 0; i < n; ++i) ring.AddServer(i);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<TestNode>(i, transport, cfg));
      nodes.back()->agent->SetRing(ring);
      transport.Register(i, nodes.back()->dispatcher.AsHandler());
    }
  }

  void StartAll() {
    for (auto& node : nodes) node->agent->Start();
  }

  // Wait (bounded) until `pred` holds.
  bool Eventually(const std::function<bool()>& pred, std::chrono::milliseconds limit = 2000ms) {
    auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(5ms);
    }
    return pred();
  }

  net::InProcessTransport transport;
  std::vector<std::unique_ptr<TestNode>> nodes;
};

TEST_F(MembershipTest, PingKeepsRingStable) {
  Boot(4);
  StartAll();
  std::this_thread::sleep_for(100ms);
  for (auto& node : nodes) {
    EXPECT_EQ(node->agent->ring_view().size(), 4u);
  }
}

TEST_F(MembershipTest, NeighborsDetectAndPropagateFailure) {
  Boot(5);
  std::atomic<int> failures_seen{0};
  for (auto& node : nodes) {
    node->agent->OnFailure([&failures_seen](int failed) {
      if (failed == 2) ++failures_seen;
    });
  }
  StartAll();
  std::this_thread::sleep_for(50ms);

  // Crash server 2: detach its endpoint (heartbeats to it now fail).
  nodes[2]->agent->Stop();
  transport.Register(2, nullptr);

  ASSERT_TRUE(Eventually([&] {
    for (int i : {0, 1, 3, 4}) {
      if (nodes[static_cast<std::size_t>(i)]->agent->ring_view().Contains(2)) return false;
    }
    return true;
  })) << "all survivors should drop the failed server";
  EXPECT_GE(failures_seen.load(), 1);
}

TEST_F(MembershipTest, ElectionPicksMaxId) {
  Boot(4);
  StartAll();
  nodes[1]->agent->StartElection();
  ASSERT_TRUE(Eventually([&] {
    for (auto& node : nodes) {
      if (node->agent->coordinator() != 3) return false;
    }
    return true;
  })) << "Chang-Roberts with max-id must elect server 3";
}

TEST_F(MembershipTest, CoordinatorFailureTriggersReelection) {
  Boot(4);
  StartAll();
  nodes[0]->agent->StartElection();
  ASSERT_TRUE(Eventually([&] { return nodes[0]->agent->coordinator() == 3; }));

  // Kill the coordinator.
  nodes[3]->agent->Stop();
  transport.Register(3, nullptr);

  ASSERT_TRUE(Eventually([&] {
    for (int i : {0, 1, 2}) {
      if (nodes[static_cast<std::size_t>(i)]->agent->coordinator() != 2) return false;
    }
    return true;
  })) << "survivors should elect the next-highest id";
}

TEST_F(MembershipTest, JoinSpreadsToMembers) {
  Boot(3);
  StartAll();
  // A fresh server joins through seed 0.
  auto newcomer = std::make_unique<TestNode>(
      7, transport, MembershipConfig{.heartbeat_interval = 10ms, .miss_threshold = 2});
  transport.Register(7, newcomer->dispatcher.AsHandler());
  ASSERT_TRUE(newcomer->agent->Join(0));
  EXPECT_EQ(newcomer->agent->ring_view().size(), 4u);

  ASSERT_TRUE(Eventually([&] {
    for (auto& node : nodes) {
      if (!node->agent->ring_view().Contains(7)) return false;
    }
    return true;
  }));
  nodes.push_back(std::move(newcomer));
}

TEST_F(MembershipTest, JoinThroughDeadSeedFails) {
  Boot(2);
  TestNode stray(9, transport);
  transport.Register(9, stray.dispatcher.AsHandler());
  EXPECT_FALSE(stray.agent->Join(42));
}

}  // namespace
}  // namespace eclipse::dht
