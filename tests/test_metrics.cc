#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(HistogramTest, MeanAndQuantiles) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 4u, 8u, 1000u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1015u);
  EXPECT_DOUBLE_EQ(h.mean(), 203.0);
  EXPECT_LE(h.ApproxQuantile(0.5), 7u);       // 3 of 5 samples <= 4
  EXPECT_GE(h.ApproxQuantile(0.99), 1000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
}

TEST(HistogramTest, ZeroSample) {
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.ApproxQuantile(1.0), 1u);
}

TEST(HistogramTest, ConcurrentRecordKeepsBucketInvariant) {
  // Many writers, one snapshotting reader. After the barrier (join), every
  // Record must be fully visible: count == sum of bucket counts, and sum
  // matches the arithmetic total of what the writers recorded.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      // Mid-flight snapshots must be internally sane even if they straddle a
      // Record (bucket and count are separate atomics).
      auto buckets = h.BucketCounts();
      std::uint64_t bucket_total = 0;
      for (auto b : buckets) bucket_total += b;
      (void)h.mean();
      (void)h.ApproxQuantile(0.99);
      ASSERT_LE(bucket_total, kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i % (16u << t));  // spread across buckets, per-thread range
      }
    });
    for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += i % (16u << t);
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), expected_sum);
  auto buckets = h.BucketCounts();
  std::uint64_t bucket_total = 0;
  for (auto b : buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count()) << "a Record was torn across the barrier";
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateAndSnapshot) {
  // Hammer the registry's get-or-create path for the same and distinct names
  // while another thread snapshots/renders: exercises the map lock, and the
  // returned references must stay stable across rehashing inserts.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)reg.CounterSnapshot();
      (void)reg.Render();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("shared.ops").Add();
        reg.GetCounter("thread." + std::to_string(t)).Add();
        reg.GetHistogram("lat." + std::to_string(i % 17)).Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(reg.GetCounter("shared.ops").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
  std::uint64_t hist_total = 0;
  for (int i = 0; i < 17; ++i) {
    hist_total += reg.GetHistogram("lat." + std::to_string(i)).count();
  }
  EXPECT_EQ(hist_total, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, GetOrCreateAndRender) {
  MetricsRegistry reg;
  reg.GetCounter("a.requests").Add(3);
  reg.GetCounter("a.requests").Add(1);  // same counter
  reg.GetCounter("b.errors").Add();
  reg.GetHistogram("lat_us").Record(100);

  auto snapshot = reg.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a.requests");
  EXPECT_EQ(snapshot[0].second, 4u);
  EXPECT_EQ(snapshot[1].second, 1u);

  std::string report = reg.Render();
  EXPECT_NE(report.find("a.requests"), std::string::npos);
  EXPECT_NE(report.find("lat_us"), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(reg.CounterSnapshot()[0].second, 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.value(), 40);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinct) {
  MetricsRegistry reg;
  reg.GetCounter("mr.map_tasks_by_locality", {{"locality", "memory"}}).Add(3);
  reg.GetCounter("mr.map_tasks_by_locality", {{"locality", "remote_disk"}}).Add(1);
  reg.GetCounter("mr.map_tasks_by_locality", {{"locality", "memory"}}).Add(2);
  reg.GetCounter("mr.map_tasks_by_locality").Add(6);  // unlabeled series

  EXPECT_EQ(reg.GetCounter("mr.map_tasks_by_locality", {{"locality", "memory"}}).value(), 5u);
  EXPECT_EQ(reg.GetCounter("mr.map_tasks_by_locality", {{"locality", "remote_disk"}}).value(),
            1u);
  EXPECT_EQ(reg.GetCounter("mr.map_tasks_by_locality").value(), 6u);

  auto snapshot = reg.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "mr.map_tasks_by_locality");  // unlabeled sorts first
  EXPECT_EQ(snapshot[1].first, "mr.map_tasks_by_locality{locality=\"memory\"}");
  EXPECT_EQ(snapshot[1].second, 5u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  reg.GetCounter("x", {{"a", "1"}, {"b", "2"}}).Add(1);
  reg.GetCounter("x", {{"b", "2"}, {"a", "1"}}).Add(1);
  EXPECT_EQ(reg.GetCounter("x", {{"a", "1"}, {"b", "2"}}).value(), 2u);
  EXPECT_EQ(reg.CounterSnapshot().size(), 1u);
}

// Every non-comment line of the exposition must parse as
// `name{label="value",...} <number>` with a sanitized metric name — the
// format Prometheus's text parser accepts line by line.
void ExpectPrometheusParses(const std::string& text) {
  std::size_t pos = 0;
  int series = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "exposition must end with a newline";
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    ASSERT_FALSE(line[0] == '#') << "only # TYPE comments are emitted: " << line;

    std::size_t i = 0;
    auto name_char = [](char c, bool first) {
      bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
      return first ? alpha : (alpha || (c >= '0' && c <= '9'));
    };
    ASSERT_TRUE(i < line.size() && name_char(line[i], true)) << line;
    while (i < line.size() && name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      std::size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_TRUE(i < line.size() && line[i] == ' ') << line;
    ++i;
    ASSERT_LT(i, line.size()) << line;
    if (line[i] == '-') ++i;
    ASSERT_LT(i, line.size()) << line;
    while (i < line.size()) {
      ASSERT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
      ++i;
    }
    ++series;
  }
  EXPECT_GT(series, 0);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("a.requests").Add(4);
  reg.GetCounter("net.calls", {{"transport", "tcp"}}).Add(2);
  reg.GetGauge("cluster.live_servers").Set(8);
  reg.GetHistogram("mr.map_task_us", {{"locality", "memory"}}).Record(100);
  reg.GetHistogram("mr.map_task_us", {{"locality", "memory"}}).Record(3);

  std::string prom = reg.RenderPrometheus();
  ExpectPrometheusParses(prom);

  EXPECT_NE(prom.find("# TYPE a_requests counter\n"), std::string::npos);
  EXPECT_NE(prom.find("a_requests 4\n"), std::string::npos);
  EXPECT_NE(prom.find("net_calls{transport=\"tcp\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cluster_live_servers gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("cluster_live_servers 8\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mr_map_task_us histogram\n"), std::string::npos);
  // Cumulative buckets: sample 3 falls in [2,4) => le="3" bucket holds 1,
  // sample 100 in [64,128) => le="127" reaches 2; +Inf, sum, count follow.
  EXPECT_NE(prom.find("mr_map_task_us_bucket{locality=\"memory\",le=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mr_map_task_us_bucket{locality=\"memory\",le=\"127\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mr_map_task_us_bucket{locality=\"memory\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mr_map_task_us_sum{locality=\"memory\"} 103\n"), std::string::npos);
  EXPECT_NE(prom.find("mr_map_task_us_count{locality=\"memory\"} 2\n"), std::string::npos);
}

TEST(ClusterMetrics, PrometheusExpositionCoversLayers) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 256;
  mr::Cluster cluster(opts);
  Rng rng(9);
  workload::TextOptions topts;
  topts.target_bytes = 3000;
  ASSERT_TRUE(cluster.dfs().Upload("t", workload::GenerateText(rng, topts)).ok());
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc", "t")).status.ok());

  std::string prom = cluster.MetricsPrometheus();
  ExpectPrometheusParses(prom);
  EXPECT_NE(prom.find("cluster_live_servers 4\n"), std::string::npos);
  EXPECT_NE(prom.find("cache_used_bytes{server=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("cache_capacity_bytes{server=\"3\"}"), std::string::npos);
  EXPECT_NE(prom.find("mr_map_tasks_by_locality{locality="), std::string::npos);
  EXPECT_NE(prom.find("net_calls{transport=\"inproc\"}"), std::string::npos);
  EXPECT_NE(prom.find("mr_jobs_completed 1\n"), std::string::npos);

  cluster.KillServer(1);
  prom = cluster.MetricsPrometheus();
  EXPECT_NE(prom.find("cluster_live_servers 3\n"), std::string::npos);
}

TEST(ClusterMetrics, JobsPopulateRegistry) {
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 256;
  mr::Cluster cluster(opts);
  Rng rng(5);
  workload::TextOptions topts;
  topts.target_bytes = 3000;
  std::string text = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("t", text).ok());

  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc1", "t")).status.ok());
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc2", "t")).status.ok());

  auto& m = cluster.metrics();
  EXPECT_EQ(m.GetCounter("mr.jobs_completed").value(), 2u);
  EXPECT_GT(m.GetCounter("mr.map_tasks").value(), 0u);
  EXPECT_GT(m.GetCounter("mr.icache_hits").value(), 0u) << "second run hits";
  EXPECT_EQ(m.GetHistogram("mr.job_wall_us").count(), 2u);

  cluster.KillServer(1);
  EXPECT_EQ(m.GetCounter("cluster.recoveries").value(), 1u);
}

}  // namespace
}  // namespace eclipse
