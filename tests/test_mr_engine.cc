// End-to-end MapReduce correctness on the emulated cluster, checked against
// the serial reference implementations.
#include <gtest/gtest.h>

#include "apps/grep.h"
#include "apps/inverted_index.h"
#include "apps/sort.h"
#include "apps/text_util.h"
#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse::mr {
namespace {

ClusterOptions SmallCluster(int servers, SchedulerKind kind = SchedulerKind::kLaf) {
  ClusterOptions opts;
  opts.num_servers = servers;
  opts.block_size = 256;          // force multi-block files
  opts.cache_capacity = 1_MiB;
  opts.scheduler = kind;
  return opts;
}

std::string SampleText() {
  Rng rng(42);
  workload::TextOptions topts;
  topts.target_bytes = 4000;
  topts.vocabulary = 50;
  return workload::GenerateText(rng, topts);
}

class WordCountGrid
    : public ::testing::TestWithParam<std::tuple<int, int, SchedulerKind>> {};

TEST_P(WordCountGrid, MatchesSerialReference) {
  auto [servers, block_size, kind] = GetParam();
  ClusterOptions opts = SmallCluster(servers, kind);
  opts.block_size = static_cast<Bytes>(block_size);
  Cluster cluster(opts);

  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    auto it = expected.find(kv.key);
    ASSERT_NE(it, expected.end()) << "unexpected word " << kv.key;
    EXPECT_EQ(kv.value, std::to_string(it->second)) << "count for " << kv.key;
  }
  EXPECT_EQ(result.stats.map_tasks, dfs::NumBlocks(text.size(), opts.block_size));
  EXPECT_GT(result.stats.reduce_tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WordCountGrid,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(128, 517, 100000),
                       ::testing::Values(SchedulerKind::kLaf, SchedulerKind::kDelay)));

TEST(MrEngine, GrepMatchesSerial) {
  Cluster cluster(SmallCluster(4));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  JobResult result = cluster.Run(apps::GrepJob("grep", "corpus", "w1 "));
  ASSERT_TRUE(result.status.ok());

  auto expected = apps::GrepSerial(text, "w1 ");
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key)));
  }
}

TEST(MrEngine, InvertedIndexMatchesSerial) {
  Cluster cluster(SmallCluster(5));
  Rng rng(7);
  workload::TextOptions topts;
  topts.vocabulary = 30;
  std::string docs = workload::GenerateDocuments(rng, 40, 12, topts);
  ASSERT_TRUE(cluster.dfs().Upload("docs", docs).ok());

  JobResult result = cluster.Run(apps::InvertedIndexJob("ii", "docs"));
  ASSERT_TRUE(result.status.ok());

  auto expected = apps::InvertedIndexSerial(docs);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    std::set<std::string> got;
    for (auto& d : apps::Split(kv.value, ' ')) got.insert(d);
    EXPECT_EQ(got, expected.at(kv.key)) << "postings for " << kv.key;
  }
}

TEST(MrEngine, SortProducesGlobalOrder) {
  Cluster cluster(SmallCluster(4));
  Rng rng(3);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "k" + std::to_string(rng.Below(500)) + " payload" + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(cluster.dfs().Upload("records", text).ok());

  JobResult result = cluster.Run(apps::SortJob("sort", "records"));
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.output.size(), 200u);
  for (std::size_t i = 1; i < result.output.size(); ++i) {
    EXPECT_LE(result.output[i - 1].key, result.output[i].key);
  }
}

TEST(MrEngine, MissingInputFails) {
  Cluster cluster(SmallCluster(3));
  JobResult result = cluster.Run(apps::WordCountJob("wc", "nope"));
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), ErrorCode::kNotFound);
}

TEST(MrEngine, EmptyInputYieldsEmptyOutput) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(cluster.dfs().Upload("empty", "").ok());
  JobResult result = cluster.Run(apps::WordCountJob("wc", "empty"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.output.empty());
}

TEST(MrEngine, SecondRunHitsInputCache) {
  Cluster cluster(SmallCluster(4));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobResult cold = cluster.Run(apps::WordCountJob("wc1", "corpus"));
  ASSERT_TRUE(cold.status.ok());
  EXPECT_EQ(cold.stats.icache_hits, 0u) << "cold cache: every block misses";
  EXPECT_GT(cold.stats.icache_misses, 0u);

  JobResult warm = cluster.Run(apps::WordCountJob("wc2", "corpus"));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_GT(warm.stats.icache_hits, 0u) << "same keys → same servers → hits";
}

TEST(MrEngine, TaggedIntermediatesSkipMapsOnReuse) {
  Cluster cluster(SmallCluster(4));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobSpec first = apps::WordCountJob("wc-a", "corpus");
  first.intermediate_tag = "wc-shared";
  JobResult r1 = cluster.Run(first);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.stats.maps_skipped, 0u);

  JobSpec second = apps::WordCountJob("wc-b", "corpus");
  second.intermediate_tag = "wc-shared";
  JobResult r2 = cluster.Run(second);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.stats.maps_skipped, r2.stats.map_tasks)
      << "every map should reuse the tagged intermediates (§II-C)";

  // Identical results either way.
  ASSERT_EQ(r1.output.size(), r2.output.size());
  for (std::size_t i = 0; i < r1.output.size(); ++i) {
    EXPECT_EQ(r1.output[i], r2.output[i]);
  }
}

TEST(MrEngine, ExpiredIntermediatesAreRecomputed) {
  Cluster cluster(SmallCluster(3));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobSpec first = apps::WordCountJob("wc-a", "corpus");
  first.intermediate_tag = "ttl-tag";
  first.intermediate_ttl = std::chrono::milliseconds(30);
  ASSERT_TRUE(cluster.Run(first).status.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  JobSpec second = apps::WordCountJob("wc-b", "corpus");
  second.intermediate_tag = "ttl-tag";
  second.intermediate_ttl = std::chrono::milliseconds(30);
  JobResult r2 = cluster.Run(second);
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  // TTL invalidated the manifests: maps must re-run, results still correct.
  auto expected = apps::WordCountSerial(text);
  EXPECT_EQ(r2.output.size(), expected.size());
}

TEST(MrEngine, ProactiveSpillsPlacedReducerSide) {
  ClusterOptions opts = SmallCluster(4);
  Cluster cluster(opts);
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobSpec spec = apps::WordCountJob("wc", "corpus");
  spec.spill_threshold = 64;  // many small spills while mapping
  JobResult result = cluster.Run(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.stats.spills, result.stats.reduce_tasks)
      << "threshold spilling should produce multiple spills per range";
  EXPECT_GT(result.stats.bytes_spilled, 0u);
}

TEST(MrEngine, MigrateMisplacedCacheMovesEntries) {
  ClusterOptions opts = SmallCluster(4);
  opts.laf.window = 8;  // repartition quickly
  opts.laf.alpha = 1.0;
  Cluster cluster(opts);
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc", "corpus")).status.ok());
  // After aggressive repartitioning some cached blocks are misplaced; the
  // migration pass may move them. It must never lose entries.
  std::size_t before = 0;
  for (int id : cluster.WorkerIds()) before += cluster.worker(id).cache().Count();
  cluster.MigrateMisplacedCache();
  std::size_t after = 0;
  for (int id : cluster.WorkerIds()) after += cluster.worker(id).cache().Count();
  EXPECT_EQ(after, before);
}

TEST(MrEngine, MultiFileInputsUnionCorrectly) {
  Cluster cluster(SmallCluster(4));
  Rng rng(21);
  workload::TextOptions topts;
  topts.target_bytes = 2500;
  topts.vocabulary = 30;
  std::string a = workload::GenerateText(rng, topts);
  std::string b = workload::GenerateText(rng, topts);
  std::string c = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("a", a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", b).ok());
  ASSERT_TRUE(cluster.dfs().Upload("c", c).ok());

  JobSpec spec = apps::WordCountJob("wc-multi", "a");
  spec.extra_inputs = {"b", "c"};
  JobResult result = cluster.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  auto expected = apps::WordCountSerial(a + b + c);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key))) << kv.key;
  }
  EXPECT_EQ(result.stats.input_bytes, a.size() + b.size() + c.size());

  // A missing extra input fails the whole job up front.
  JobSpec broken = apps::WordCountJob("wc-broken", "a");
  broken.extra_inputs = {"nope"};
  EXPECT_EQ(cluster.Run(broken).status.code(), ErrorCode::kNotFound);
}

TEST(MrEngine, VirtualNodeClusterRunsCorrectly) {
  ClusterOptions opts = SmallCluster(5);
  opts.vnodes = 8;
  Cluster cluster(opts);
  EXPECT_EQ(cluster.ring().NumPositions(), 40u);

  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  auto back = cluster.dfs().ReadFile("corpus");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);

  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(result.output.size(), expected.size());
  for (const auto& kv : result.output) {
    EXPECT_EQ(kv.value, std::to_string(expected.at(kv.key)));
  }

  // Failure handling is vnode-aware too: every vnode of the victim leaves.
  ASSERT_EQ(cluster.KillServer(1).blocks_lost, 0u);
  back = cluster.dfs().ReadFile("corpus");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);
}

TEST(MrEngine, OutputFilePersistedToDfs) {
  Cluster cluster(SmallCluster(4));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  JobSpec spec = apps::WordCountJob("wc", "corpus");
  spec.output_file = "wc.out";
  JobResult result = cluster.Run(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.stats.output_bytes, 0u);

  auto stored = cluster.dfs().ReadFile("wc.out");
  ASSERT_TRUE(stored.ok());
  // One "key\tvalue" line per output pair, in output order.
  std::size_t lines = 0, pos = 0;
  while ((pos = stored.value().find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, result.output.size());
  const auto& first = result.output.front();
  EXPECT_EQ(stored.value().substr(0, first.key.size() + 1 + first.value.size()),
            first.key + "\t" + first.value);

  // Re-running with the same output file replaces it, not duplicates it.
  JobSpec again = apps::WordCountJob("wc2", "corpus");
  again.output_file = "wc.out";
  ASSERT_TRUE(cluster.Run(again).status.ok());
  auto replaced = cluster.dfs().ReadFile("wc.out");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value(), stored.value());
}

TEST(MrEngine, StatsReportWallTimeAndInputBytes) {
  Cluster cluster(SmallCluster(2));
  std::string text = SampleText();
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  JobResult result = cluster.Run(apps::WordCountJob("wc", "corpus"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_EQ(result.stats.input_bytes, text.size());
}

}  // namespace
}  // namespace eclipse::mr
