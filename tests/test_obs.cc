// Observability acceptance tests: trace capture validity, the Fig. 6-style
// per-job summary, schema parity between the real engine and the DES
// simulator, and the zero-allocation guarantee of the disabled path.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "mr/cluster.h"
#include "obs/summary.h"
#include "sim/constants.h"
#include "sim/eclipse_des.h"
#include "workload/generators.h"

// Global allocation counter: every path through the replaced operator new
// bumps it, so a window with zero delta proves a code region allocates
// nothing (the contract of trace emission while tracing is disabled).
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// The nothrow variants must be replaced too (stable_sort's temporary buffer
// allocates through them): otherwise the default nothrow new pairs with our
// replaced delete and ASan reports an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace eclipse {
namespace {

TEST(TracerTest, DisabledEmissionAllocatesNothing) {
  auto& tracer = obs::Tracer::Global();
  tracer.Stop();
  tracer.Clear();
  ASSERT_FALSE(tracer.enabled());

  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::TraceSpan span("mr", "map_task", 3,
                        {obs::U64("block", static_cast<std::uint64_t>(i))});
    span.AddArg(obs::Str("locality", "memory"));
    tracer.Emit('i', "sched", "sched_assign", obs::kDriverPid, {obs::U64("server", 2)});
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
      << "disabled-path emission must not touch the allocator";
}

TEST(TracerTest, CapturesNestedSpansAndInstants) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::TraceSpan job("mr", "job", obs::kDriverPid, {obs::U64("job", 1)});
    tracer.Emit('i', "sched", "sched_assign", obs::kDriverPid, {obs::U64("server", 3)});
    obs::TraceSpan task("mr", "map_task", 3, {obs::U64("block", 7)});
    task.AddArg(obs::Str("locality", "local_disk"));
    task.AddArg(obs::U64("bytes", 4096));
  }
  tracer.Stop();

  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 5u);  // 2 B + 2 E + 1 i
  EXPECT_EQ(events.front().phase, 'B');
  EXPECT_STREQ(events.front().name, "job");
  // End-args attached via AddArg ride on the 'E' event.
  bool saw_locality = false;
  for (const auto& e : events) {
    if (e.phase != 'E' || std::string(e.name) != "map_task") continue;
    for (std::uint8_t a = 0; a < e.nargs; ++a) {
      if (std::string(e.args[a].key) == "locality") {
        EXPECT_STREQ(e.args[a].sval, "local_disk");
        saw_locality = true;
      }
    }
  }
  EXPECT_TRUE(saw_locality);

  std::string json = tracer.ExportChromeTrace();
  auto valid = obs::ValidateChromeTrace(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"locality\":\"local_disk\""), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, StartResetsPreviousCapture) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  tracer.Emit('i', "mr", "stale", 1, {});
  tracer.Start();  // new session: the event above is invalidated
  tracer.Emit('i', "mr", "fresh", 1, {});
  tracer.Stop();
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
  tracer.Clear();
}

TEST(ValidateChromeTraceTest, AcceptsMinimalAndRejectsMalformed) {
  EXPECT_TRUE(obs::ValidateChromeTrace(R"({"traceEvents":[]})").ok());
  EXPECT_TRUE(obs::ValidateChromeTrace(
                  R"({"traceEvents":[{"ph":"X","ts":1,"dur":2,"pid":1,"tid":0,)"
                  R"("name":"map_task","cat":"mr"}]})")
                  .ok());

  // Truncated JSON.
  EXPECT_FALSE(obs::ValidateChromeTrace("{").ok());
  // Missing required fields.
  EXPECT_FALSE(obs::ValidateChromeTrace(R"({"traceEvents":[{"ph":"i"}]})").ok());
  // Unmatched 'B'.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":1,)"
                   R"("name":"a","cat":"c"}]})")
                   .ok());
  // 'E' name does not match the open 'B'.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[)"
                   R"({"ph":"B","ts":1,"pid":1,"tid":1,"name":"a","cat":"c"},)"
                   R"({"ph":"E","ts":2,"pid":1,"tid":1,"name":"b","cat":"c"}]})")
                   .ok());
  // Decreasing timestamps.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[)"
                   R"({"ph":"i","ts":5,"pid":1,"tid":1,"name":"a","cat":"c"},)"
                   R"({"ph":"i","ts":4,"pid":1,"tid":1,"name":"b","cat":"c"}]})")
                   .ok());
  // 'X' without dur.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[{"ph":"X","ts":1,"pid":1,"tid":0,)"
                   R"("name":"a","cat":"c"}]})")
                   .ok());
}

// The issue's acceptance scenario: a traced wordcount on 8 emulated servers
// must produce (a) a Chrome-trace JSON that validates and (b) a per-job
// summary whose map-task counts split by locality class.
TEST(TraceCaptureTest, WordcountTimelineValidatesAndSummarizes) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    mr::ClusterOptions opts;
    opts.num_servers = 8;
    opts.block_size = 256;
    mr::Cluster cluster(opts);
    Rng rng(11);
    workload::TextOptions topts;
    topts.target_bytes = 8000;
    std::string text = workload::GenerateText(rng, topts);
    ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
    auto result = cluster.Run(apps::WordCountJob("wc-traced", "corpus"));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();

    // Export before the cluster (and its worker thread pools) is destroyed:
    // a thread's trace buffers are reclaimed when the thread exits.
    tracer.Stop();
    std::string json = tracer.ExportChromeTrace();
    auto valid = obs::ValidateChromeTrace(json);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
    EXPECT_EQ(tracer.overwritten_chunks(), 0u);

    auto jobs = obs::Summarize(tracer.Snapshot());
    ASSERT_EQ(jobs.size(), 1u);
    const auto& j = jobs[0];
    EXPECT_EQ(j.maps_total, result.stats.map_tasks);
    EXPECT_EQ(j.reduces_total, result.stats.reduce_tasks);
    EXPECT_GT(j.maps_total, 0u);
    // The locality classes partition the map tasks (Fig. 6 invariant), and
    // the trace-derived split agrees with the engine's own JobStats.
    EXPECT_EQ(j.maps_memory + j.maps_local_disk + j.maps_remote_disk + j.maps_skipped,
              j.maps_total);
    EXPECT_EQ(j.maps_memory, result.stats.maps_memory);
    EXPECT_EQ(j.maps_local_disk, result.stats.maps_local_disk);
    EXPECT_EQ(j.maps_remote_disk, result.stats.maps_remote_disk);
    EXPECT_EQ(j.maps_skipped, result.stats.maps_skipped);
    EXPECT_GE(j.map_waves, 1u);
    EXPECT_EQ(j.sched_assigns, j.maps_total);
    EXPECT_EQ(j.map_task_us.size(), j.maps_total);

    std::string report = obs::RenderJobSummaries(jobs);
    EXPECT_NE(report.find("map locality"), std::string::npos);
    EXPECT_NE(report.find("memory"), std::string::npos);
    EXPECT_NE(report.find("p99"), std::string::npos);
  }
  tracer.Clear();
}

TEST(TraceCaptureTest, SecondRunOverSameInputHitsMemory) {
  auto& tracer = obs::Tracer::Global();
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 256;
  mr::Cluster cluster(opts);
  Rng rng(3);
  workload::TextOptions topts;
  topts.target_bytes = 4000;
  ASSERT_TRUE(cluster.dfs().Upload("t", workload::GenerateText(rng, topts)).ok());
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("warm", "t")).status.ok());

  tracer.Start();
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("hot", "t")).status.ok());
  tracer.Stop();
  auto jobs = obs::Summarize(tracer.Snapshot());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_GT(jobs[0].maps_memory, 0u) << "warmed iCache should serve map inputs";
  EXPECT_GT(jobs[0].bytes_from_memory, 0u);
  tracer.Clear();
}

// The simulator emits the same schema ('X' complete events, sim-time
// stamps), so the identical Summarize/Validate path reads a sim capture.
TEST(TraceCaptureTest, SimulatorEmitsSameSchema) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  sim::SimConfig config;
  config.num_nodes = 4;
  config.nodes_per_rack = 2;
  config.map_slots = 2;
  config.reduce_slots = 2;
  config.block_size = 16_MiB;
  config.cache_per_node = 256_MiB;
  sim::EclipseDes des(config);
  sim::SimJobSpec job;
  job.app = sim::GrepProfile();
  job.num_blocks = 12;
  auto r = des.RunJob(job);
  tracer.Stop();

  auto valid = obs::ValidateChromeTrace(tracer.ExportChromeTrace());
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  auto jobs = obs::Summarize(tracer.Snapshot());
  ASSERT_EQ(jobs.size(), 1u);
  const auto& j = jobs[0];
  EXPECT_EQ(j.maps_total, r.map_tasks);
  EXPECT_EQ(j.reduces_total, r.reduce_tasks);
  EXPECT_EQ(j.maps_memory + j.maps_local_disk + j.maps_remote_disk + j.maps_skipped,
            j.maps_total);
  EXPECT_EQ(j.maps_memory, r.cache_hits);
  EXPECT_GE(j.map_waves, 1u);
  EXPECT_EQ(j.wall_us, static_cast<std::uint64_t>(r.job_seconds * 1e6));
  // Cold first scan: every input comes from a disk, not memory.
  EXPECT_EQ(j.maps_memory, 0u);
  EXPECT_EQ(j.maps_local_disk + j.maps_remote_disk, j.maps_total);
  tracer.Clear();
}

TEST(TracerTest, ConcurrentEmissionIsLossless) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::atomic<bool> may_exit{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go, &done, &may_exit] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        obs::TraceSpan span("mr", "map_task", t,
                            {obs::U64("block", static_cast<std::uint64_t>(i))});
        span.AddArg(obs::Str("locality", "memory"));
        obs::Tracer::Global().Emit('i', "sched", "sched_assign", t, {});
      }
      done.fetch_add(1);
      // A thread's buffers are reclaimed at thread exit: hold every thread
      // alive until the main thread has snapshotted the capture.
      while (!may_exit.load()) std::this_thread::yield();
    });
  }
  go.store(true);
  // Reader racing the writers: snapshots mid-capture must be well-formed
  // (this is the TSan-exercised path).
  while (done.load() < kThreads) (void)tracer.Snapshot();
  tracer.Stop();

  auto events = tracer.Snapshot();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kIters * 3);
  EXPECT_EQ(tracer.overwritten_chunks(), 0u);
  auto valid = obs::ValidateChromeTrace(tracer.ExportChromeTrace());
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  may_exit.store(true);
  for (auto& th : threads) th.join();
  tracer.Clear();
}

TEST(SummaryTest, AttributesEventsToEnclosingJob) {
  using obs::TraceEvent;
  auto ev = [](char ph, const char* name, std::uint64_t ts, std::uint64_t dur,
               std::initializer_list<obs::TraceArg> args) {
    TraceEvent e;
    e.phase = ph;
    e.cat = "mr";
    e.name = name;
    e.pid = 1;
    e.tid = 0;
    e.ts_us = ts;
    e.dur_us = dur;
    for (const auto& a : args) e.args[e.nargs++] = a;
    return e;
  };
  std::vector<TraceEvent> events = {
      ev('X', "job", 0, 100, {obs::U64("job", 7)}),
      ev('X', "map_task", 10, 20,
         {obs::Str("locality", "remote_disk"), obs::U64("bytes", 512)}),
      ev('X', "reduce_task", 50, 30, {obs::U64("bytes", 256)}),
      ev('X', "job", 200, 50, {obs::U64("job", 8)}),
      ev('X', "map_task", 210, 5, {obs::Str("locality", "memory"), obs::U64("bytes", 64)}),
  };
  auto jobs = obs::Summarize(events);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job_id, 7u);
  EXPECT_EQ(jobs[0].maps_remote_disk, 1u);
  EXPECT_EQ(jobs[0].bytes_from_remote_disk, 512u);
  EXPECT_EQ(jobs[0].reduces_total, 1u);
  EXPECT_EQ(jobs[1].job_id, 8u);
  EXPECT_EQ(jobs[1].maps_memory, 1u);
  EXPECT_EQ(jobs[1].bytes_from_memory, 64u);
  EXPECT_EQ(jobs[1].reduces_total, 0u);
}

}  // namespace
}  // namespace eclipse
