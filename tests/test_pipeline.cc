// Job chaining & hardening:
//  * pipelines where one job's persisted output is the next job's input
//    (the paper's incremental-computation motivation, §II-B),
//  * a chaos run: repeated jobs with random worker kills and joins between
//    them, always ending in a correct answer,
//  * misc public-API coverage (cache ranges, cluster stats, log levels).
#include <gtest/gtest.h>

#include "apps/grep.h"
#include "apps/sort.h"
#include "apps/text_util.h"
#include "apps/wordcount.h"
#include "common/log.h"
#include "mr/cluster.h"
#include "workload/generators.h"

namespace eclipse::mr {
namespace {

ClusterOptions Opts(int servers = 5) {
  ClusterOptions opts;
  opts.num_servers = servers;
  opts.block_size = 256;
  opts.cache_capacity = 4_MiB;
  return opts;
}

std::string SomeText(std::uint64_t seed, Bytes bytes = 5000) {
  Rng rng(seed);
  workload::TextOptions topts;
  topts.target_bytes = bytes;
  topts.vocabulary = 40;
  return workload::GenerateText(rng, topts);
}

TEST(Pipeline, OutputOfOneJobFeedsTheNext) {
  Cluster cluster(Opts());
  std::string text = SomeText(1);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());

  // Stage 1: word count, persisted to the DHT FS.
  JobSpec wc = apps::WordCountJob("wc", "corpus");
  wc.output_file = "counts.tsv";
  ASSERT_TRUE(cluster.Run(wc).status.ok());

  // Stage 2: grep the persisted counts for a specific word's line.
  JobResult hits = cluster.Run(apps::GrepJob("g", "counts.tsv", "w1\t"));
  ASSERT_TRUE(hits.status.ok());
  auto expected = apps::WordCountSerial(text);
  ASSERT_EQ(hits.output.size(), 1u) << "exactly the w1 line matches";
  EXPECT_EQ(hits.output[0].key, "w1\t" + std::to_string(expected.at("w1")));

  // Stage 3: sort the counts file by word; output must be densely ordered.
  JobResult sorted = cluster.Run(apps::SortJob("s", "counts.tsv"));
  ASSERT_TRUE(sorted.status.ok());
  ASSERT_EQ(sorted.output.size(), expected.size());
  for (std::size_t i = 1; i < sorted.output.size(); ++i) {
    EXPECT_LE(sorted.output[i - 1].key, sorted.output[i].key);
  }
}

TEST(Pipeline, ChaosKillsAndJoinsBetweenJobs) {
  Cluster cluster(Opts(7));
  std::string text = SomeText(2, 8000);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  auto expected = apps::WordCountSerial(text);

  Rng rng(99);
  std::vector<int> killable = {0, 1, 2, 3, 4, 5, 6};
  for (int round = 0; round < 6; ++round) {
    // Random membership event between jobs.
    switch (rng.Below(3)) {
      case 0: {
        if (killable.size() > 4) {  // keep >= 4 alive for 3-way replication
          std::size_t pick = rng.Below(killable.size());
          int victim = killable[pick];
          killable.erase(killable.begin() + static_cast<std::ptrdiff_t>(pick));
          auto report = cluster.KillServer(victim);
          ASSERT_EQ(report.blocks_lost, 0u) << "round " << round;
        }
        break;
      }
      case 1: {
        int id = cluster.AddServer();
        killable.push_back(id);
        break;
      }
      default:
        break;  // quiet round
    }

    JobResult result =
        cluster.Run(apps::WordCountJob("wc" + std::to_string(round), "corpus"));
    ASSERT_TRUE(result.status.ok()) << "round " << round << ": "
                                    << result.status.ToString();
    ASSERT_EQ(result.output.size(), expected.size()) << "round " << round;
    for (const auto& kv : result.output) {
      ASSERT_EQ(kv.value, std::to_string(expected.at(kv.key)))
          << "round " << round << " word " << kv.key;
    }
  }
}

TEST(Pipeline, ClusterIntrospectionApis) {
  Cluster cluster(Opts(4));
  EXPECT_EQ(cluster.WorkerIds().size(), 4u);
  EXPECT_EQ(cluster.ring().size(), 4u);

  RangeTable ranges = cluster.CacheRanges();
  EXPECT_EQ(ranges.size(), 4u);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_GE(ranges.Owner(rng.Next()), 0);

  std::string text = SomeText(3);
  ASSERT_TRUE(cluster.dfs().Upload("corpus", text).ok());
  ASSERT_TRUE(cluster.Run(apps::WordCountJob("wc", "corpus")).status.ok());
  auto stats = cluster.AggregateCacheStats();
  EXPECT_GT(stats.inserts, 0u);
  cluster.ResetCacheStats();
  auto cleared = cluster.AggregateCacheStats();
  EXPECT_EQ(cleared.inserts, 0u);
  EXPECT_EQ(cleared.hits, 0u);

  cluster.KillServer(2);
  EXPECT_EQ(cluster.WorkerIds().size(), 3u);
  EXPECT_TRUE(cluster.worker(2).dead());

  // Files listable through the cluster's client.
  auto files = cluster.dfs().ListFiles();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].name, "corpus");
}

TEST(Pipeline, LogLevelsRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LOG_DEBUG << "suppressed";
  LOG_INFO << "suppressed";
  SetLogLevel(before);
  EXPECT_EQ(GetLogLevel(), before);
  for (auto code : {ErrorCode::kOk, ErrorCode::kNotFound, ErrorCode::kAlreadyExists,
                    ErrorCode::kUnavailable, ErrorCode::kPermission,
                    ErrorCode::kInvalidArgument, ErrorCode::kCorruption,
                    ErrorCode::kExpired, ErrorCode::kResourceExhausted,
                    ErrorCode::kInternal}) {
    EXPECT_NE(std::string(ErrorCodeName(code)), "Unknown");
  }
}

}  // namespace
}  // namespace eclipse::mr
