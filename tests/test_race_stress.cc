// Race-hunting stress suite: designed to make TSan bite.
//
// Every test here hammers one of the concurrency-heavy layers from many
// threads at once — the shared-budget LRU cache, the worker thread pools,
// transport registration vs. in-flight calls, DHT membership churn racing
// routing lookups, and a full job running concurrently with a server kill.
// The assertions check invariants that only hold if the locking is right;
// the real teeth are the sanitizer build modes (-DECLIPSE_SANITIZE=thread /
// address), under which CI runs this binary.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "cache/lru_cache.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dfs/block_store.h"
#include "dht/membership.h"
#include "fault/fault_plan.h"
#include "mr/cluster.h"
#include "net/conn_pool.h"
#include "net/dispatcher.h"
#include "net/retry.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "sched/task_executor.h"
#include "workload/generators.h"

namespace eclipse {
namespace {

using cache::EntryKind;
using cache::LruCache;

TEST(RaceStress, LruCachePutGetEvictHammer) {
  // 6 mutators + 2 structural threads (ExtractRange / Resize) against one
  // byte budget small enough to force constant eviction.
  LruCache cache(64_KiB);
  constexpr int kMutators = 6;
  constexpr int kIters = 4000;
  std::atomic<std::uint64_t> gets{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kMutators; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        std::string id = "obj-" + std::to_string(rng.Below(300));
        HashKey key = KeyOf(id);
        switch (i % 5) {
          case 0:
            cache.Put(id, key, std::string(1024, 'x'),
                      t % 2 ? EntryKind::kInput : EntryKind::kOutput);
            break;
          case 1:
            cache.PutPlaceholder(id, key, 2048, EntryKind::kInput);
            break;
          case 2:
            (void)cache.Get(id, EntryKind::kInput);
            gets.fetch_add(1, std::memory_order_relaxed);
            break;
          case 3:
            (void)cache.Contains(id);
            break;
          default:
            cache.Erase(id);
            break;
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&cache, &stop] {
    Rng rng(99);
    while (!stop.load()) {
      HashKey begin = rng.Next();
      (void)cache.ExtractRange(KeyRange{begin, begin + (HashKey{1} << 32), false});
      (void)cache.Entries();
      (void)cache.stats();
    }
  });
  threads.emplace_back([&cache, &stop] {
    Bytes sizes[] = {16_KiB, 64_KiB, 128_KiB};
    int i = 0;
    while (!stop.load()) {
      cache.Resize(sizes[i++ % 3]);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kMutators; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true);
  threads[kMutators].join();
  threads[kMutators + 1].join();

  cache.Resize(64_KiB);
  EXPECT_LE(cache.used(), cache.capacity());
  EXPECT_EQ(cache.Entries().size(), cache.Count());
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load()) << "lost or double-counted a Get";
}

TEST(RaceStress, ThreadPoolSubmitWaitDestroy) {
  // Repeatedly build a pool, hammer Submit/Post/Wait/QueueDepth from several
  // threads, then destroy it with work possibly still queued: the destructor
  // must drain every task (counter proves none were dropped or double-run).
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::uint64_t> executed{0};
    std::uint64_t submitted = 0;
    {
      ThreadPool pool(4);
      std::vector<std::thread> submitters;
      std::atomic<std::uint64_t> submitted_atomic{0};
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&pool, &executed, &submitted_atomic] {
          for (int i = 0; i < 200; ++i) {
            if (i % 3 == 0) {
              pool.Post([&executed] { executed.fetch_add(1); });
            } else {
              (void)pool.Submit([&executed] {
                executed.fetch_add(1);
                return 0;
              });
            }
            submitted_atomic.fetch_add(1);
          }
        });
      }
      std::thread prober([&pool] {
        for (int i = 0; i < 50; ++i) {
          (void)pool.QueueDepth();
          (void)pool.Running();
          pool.Wait();
        }
      });
      for (auto& s : submitters) s.join();
      prober.join();
      submitted = submitted_atomic.load();
      // Pool destroyed here, possibly with tasks still queued.
    }
    EXPECT_EQ(executed.load(), submitted) << "destructor dropped queued tasks";
  }
}

TEST(RaceStress, TransportRegisterVsCall) {
  // Callers race a churn thread that detaches/reattaches the target node:
  // every call must either reach the handler or fail Unavailable — never
  // crash or hang on a half-registered endpoint.
  net::InProcessTransport transport;
  std::atomic<std::uint64_t> handled{0};
  net::Handler handler = [&handled](net::NodeId, const net::Message& m) {
    handled.fetch_add(1);
    return net::Message{m.type, m.payload};
  };
  transport.Register(7, handler);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    for (int i = 0; i < 2000; ++i) {
      transport.Register(7, nullptr);
      transport.Register(7, handler);
    }
    stop.store(true);
  });
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      while (!stop.load()) {
        auto resp = transport.Call(1, 7, net::Message{42, "ping"});
        if (resp.ok()) {
          ok.fetch_add(1);
          EXPECT_EQ(resp.value().payload, "ping");
        } else {
          EXPECT_EQ(resp.status().code(), ErrorCode::kUnavailable);
        }
      }
    });
  }
  churn.join();
  for (auto& c : callers) c.join();
  EXPECT_EQ(handled.load(), ok.load());
}

TEST(RaceStress, BlockStoreTtlSweepHammer) {
  dfs::BlockStore store;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 3000; ++i) {
        std::string id = "b-" + std::to_string((t * 31 + i) % 200);
        auto ttl = (i % 4 == 0) ? std::chrono::milliseconds(1)
                                : std::chrono::milliseconds::zero();
        store.Put(id, KeyOf(id), std::string(256, 'd'), ttl);
        (void)store.Get(id);
        (void)store.Contains(id);
        if (i % 16 == 0) store.Erase(id);
      }
    });
  }
  threads.emplace_back([&store, &stop] {
    while (!stop.load()) {
      (void)store.Sweep();
      (void)store.List();
      (void)store.TotalBytes();
    }
  });
  for (int t = 0; t < 4; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true);
  threads[4].join();

  // Let every 1 ms TTL lapse, sweep, then the byte counter must equal the
  // sum of live block sizes exactly.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  store.Sweep();
  Bytes listed = 0;
  for (const auto& info : store.List()) listed += info.size;
  EXPECT_EQ(store.TotalBytes(), listed);
}

TEST(RaceStress, MembershipChurnVsRoutingLookups) {
  // Join/leave churn racing ring_view()/Owner() readers. A node is killed
  // (detached from the transport) while reader threads continuously resolve
  // owners from every surviving agent's view, then a new node joins mid-read.
  net::InProcessTransport transport;
  constexpr int kNodes = 5;
  dht::MembershipConfig cfg;
  cfg.heartbeat_interval = std::chrono::milliseconds(3);
  cfg.miss_threshold = 2;

  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<dht::MembershipAgent>> agents;
  dht::Ring initial;
  for (int i = 0; i < kNodes; ++i) initial.AddServer(i);
  for (int i = 0; i < kNodes; ++i) {
    dispatchers.push_back(std::make_unique<net::Dispatcher>());
    agents.push_back(std::make_unique<dht::MembershipAgent>(
        i, transport, *dispatchers[static_cast<std::size_t>(i)], cfg));
    agents[static_cast<std::size_t>(i)]->SetRing(initial);
    transport.Register(i, dispatchers[static_cast<std::size_t>(i)]->AsHandler());
  }
  for (auto& a : agents) a->Start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&agents, &stop, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 7);
      while (!stop.load()) {
        for (int i = 0; i < kNodes - 1; ++i) {  // agent kNodes-1 gets killed
          dht::Ring view = agents[static_cast<std::size_t>(i)]->ring_view();
          if (view.empty()) continue;
          EXPECT_GE(view.Owner(rng.Next()), 0);
        }
      }
    });
  }

  // Kill the last node: detach its endpoint and stop its heartbeats.
  const int victim = kNodes - 1;
  transport.Register(victim, nullptr);
  agents[static_cast<std::size_t>(victim)]->Stop();

  // Every surviving agent must drop the victim from its view.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (int i = 0; i < victim; ++i) {
    auto& agent = *agents[static_cast<std::size_t>(i)];
    while (agent.ring_view().Contains(victim) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_FALSE(agent.ring_view().Contains(victim))
        << "agent " << i << " never noticed the failure";
  }

  // A newcomer joins through node 0 while the readers keep hammering.
  net::Dispatcher joiner_dispatcher;
  dht::MembershipAgent joiner(kNodes, transport, joiner_dispatcher, cfg);
  transport.Register(kNodes, joiner_dispatcher.AsHandler());
  ASSERT_TRUE(joiner.Join(0));
  joiner.Start();
  for (int i = 0; i < victim; ++i) {
    auto& agent = *agents[static_cast<std::size_t>(i)];
    while (!agent.ring_view().Contains(kNodes) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(agent.ring_view().Contains(kNodes))
        << "agent " << i << " never saw the join";
  }

  stop.store(true);
  for (auto& r : readers) r.join();
  joiner.Stop();
  for (auto& a : agents) a->Stop();
  // Detach all endpoints before the agents are destroyed so no in-flight
  // handler outlives its agent.
  for (int i = 0; i <= kNodes; ++i) transport.Register(i, nullptr);
}

TEST(RaceStress, ShuffleConcurrentWithServerKill) {
  // The fault path under concurrency: a job's map phase (proactive shuffle
  // included) races KillServer on a node that may hold its spills. The job
  // must either finish correctly or fail with a clean Status — never crash
  // or hang — and afterwards the recovered cluster must run the same job.
  for (int round = 0; round < 3; ++round) {
    mr::ClusterOptions opts;
    opts.num_servers = 6;
    opts.block_size = 512;
    opts.cache_capacity = 8_MiB;
    mr::Cluster cluster(opts);
    Rng rng(static_cast<std::uint64_t>(round) + 11);
    workload::TextOptions topts;
    topts.target_bytes = 20000;
    topts.vocabulary = 50;
    ASSERT_TRUE(cluster.dfs().Upload("corpus", workload::GenerateText(rng, topts)).ok());

    mr::JobResult result;
    std::thread job([&] { result = cluster.Run(apps::WordCountJob("wc", "corpus")); });
    std::thread killer([&cluster, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
      cluster.KillServer(1 + round);
    });
    job.join();
    killer.join();

    if (result.status.ok()) {
      EXPECT_GT(result.output.size(), 0u);
    }
    // Post-recovery the cluster must be fully functional.
    auto rerun = cluster.Run(apps::WordCountJob("wc-after", "corpus"));
    ASSERT_TRUE(rerun.status.ok()) << rerun.status.ToString();
    EXPECT_GT(rerun.output.size(), 0u);
  }
}

TEST(RaceStress, SpeculationRacesGenuineCompletionAndKill) {
  // Speculative execution's worst neighborhood: a slow disk makes tasks
  // straggle so backups launch, the primary and backup attempts race to
  // completion (first-writer-wins on spills, loser cancelled), and a killer
  // thread takes a server down while duplicates are in flight and churns
  // the fault plan (heal mid-decision). Every round must end in a clean ok
  // or a clean error, and the recovered cluster must still run the job.
  for (int round = 0; round < 3; ++round) {
    auto controller = std::make_shared<fault::FaultController>();
    mr::ClusterOptions opts;
    opts.num_servers = 6;
    opts.block_size = 512;
    opts.cache_capacity = 8_MiB;
    opts.fault_controller = controller;
    mr::Cluster cluster(opts);
    Rng rng(static_cast<std::uint64_t>(round) + 31);
    workload::TextOptions topts;
    topts.target_bytes = 20000;
    topts.vocabulary = 50;
    std::string corpus = workload::GenerateText(rng, topts);
    ASSERT_TRUE(cluster.dfs().Upload("corpus", corpus).ok());

    fault::FaultPlan plan;
    plan.slow_disk_nodes = {0};
    plan.slow_disk_latency = std::chrono::milliseconds(5);
    controller->Install(plan);

    mr::JobSpec job = apps::WordCountJob("wc-spec", "corpus");
    job.speculative_execution = true;
    job.straggler_multiplier = 1.5;
    job.speculation_min_completed = 2;

    mr::JobResult result;
    std::thread driver([&] { result = cluster.Run(job); });
    std::thread killer([&cluster, &controller, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 + round));
      cluster.KillServer(2 + round);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      controller->Clear();  // heal races in-flight Decide/DiskDelay reads
    });
    driver.join();
    killer.join();

    if (result.status.ok()) {
      auto oracle = apps::WordCountSerial(corpus);
      ASSERT_EQ(result.output.size(), oracle.size());
      for (const auto& kv : result.output) {
        EXPECT_EQ(kv.value, std::to_string(oracle.at(kv.key))) << kv.key;
      }
    }
    // Post-recovery, with the plan cleared, the same speculative job must
    // succeed outright.
    auto rerun = cluster.Run(job);
    ASSERT_TRUE(rerun.status.ok()) << rerun.status.ToString();
    EXPECT_GT(rerun.output.size(), 0u);
  }
}

TEST(RaceStress, ClusterAddServerVsJobs) {
  // Membership growth racing live traffic: AddServer rebalances (and grows
  // the worker vector) while two driver threads run jobs back to back.
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  mr::Cluster cluster(opts);
  Rng rng(23);
  workload::TextOptions topts;
  topts.target_bytes = 10000;
  std::string text_a = workload::GenerateText(rng, topts);
  std::string text_b = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());

  std::atomic<int> ok_jobs{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 2; ++t) {
    drivers.emplace_back([&cluster, &ok_jobs, t] {
      for (int i = 0; i < 3; ++i) {
        auto r = cluster.Run(
            apps::WordCountJob("j" + std::to_string(t) + "-" + std::to_string(i),
                               t == 0 ? "a" : "b"));
        if (r.status.ok()) ok_jobs.fetch_add(1);
      }
    });
  }
  int added = cluster.AddServer();
  EXPECT_GE(added, 4);
  for (auto& d : drivers) d.join();
  EXPECT_EQ(ok_jobs.load(), 6) << "jobs failed during AddServer rebalance";

  // The grown cluster must produce oracle-correct output.
  auto after = cluster.Run(apps::WordCountJob("after-grow", "a"));
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  auto expected = apps::WordCountSerial(text_a);
  ASSERT_EQ(after.output.size(), expected.size());
}

TEST(RaceStress, SubmittedJobsVsAddServer) {
  // The multi-job front end racing membership growth: six jobs from two
  // users go through Submit (concurrent JobRunners sharing the SlotArbiter
  // and one SchedulerEpoch) while AddServer rebalances the DHT FS and
  // publishes a fresh epoch mid-flight. With replication 3 the grow path
  // must be invisible: every job's output must match its serial oracle —
  // in-flight jobs keep their captured epoch, new owners serve via replica
  // fall-through. (The replication=1 window is documented in
  // docs/architecture.md; this pin covers the supported configuration.)
  mr::ClusterOptions opts;
  opts.num_servers = 4;
  opts.block_size = 512;
  opts.max_concurrent_jobs = 6;
  mr::Cluster cluster(opts);
  Rng rng(47);
  workload::TextOptions topts;
  topts.target_bytes = 10000;
  std::string text_a = workload::GenerateText(rng, topts);
  std::string text_b = workload::GenerateText(rng, topts);
  ASSERT_TRUE(cluster.dfs().Upload("a", text_a).ok());
  ASSERT_TRUE(cluster.dfs().Upload("b", text_b).ok());
  auto oracle_a = apps::WordCountSerial(text_a);
  auto oracle_b = apps::WordCountSerial(text_b);

  std::vector<mr::JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    mr::JobSpec job = apps::WordCountJob("grow-race", i % 2 ? "b" : "a");
    job.user = i % 2 ? "bob" : "alice";
    job.spill_threshold = 256;
    handles.push_back(cluster.Submit(std::move(job)));
  }
  int added = cluster.AddServer();
  EXPECT_GE(added, 4);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    mr::JobResult r = handles[i].Wait();
    ASSERT_TRUE(r.status.ok()) << "job " << i << ": " << r.status.ToString();
    const auto& oracle = i % 2 ? oracle_b : oracle_a;
    ASSERT_EQ(r.output.size(), oracle.size()) << "job " << i;
    for (const auto& kv : r.output) {
      ASSERT_EQ(kv.value, std::to_string(oracle.at(kv.key))) << "job " << i << " " << kv.key;
    }
  }
  EXPECT_EQ(cluster.arbiter().InUse("alice"), 0);
  EXPECT_EQ(cluster.arbiter().InUse("bob"), 0);

  // The grown cluster still serves both tenants.
  auto after = cluster.Run(apps::WordCountJob("after-grow", "a"));
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  ASSERT_EQ(after.output.size(), oracle_a.size());
}

TEST(RaceStress, ValidatorTracksContendedNesting) {
  // The lock-order validator's own bookkeeping under fire: eight threads
  // hammer the same correctly-ordered three-lock chain (plus a try_lock
  // fast path and a CondVar ping-pong) so the per-thread held stacks are
  // pushed/popped millions of times while the mutexes themselves contend.
  // Under TSan this proves the validator adds no races of its own; in any
  // validator-enabled build it proves heavy contention never produces a
  // false rank-order report (the test aborting IS the failure mode).
  Mutex outer{Rank::kJobQueue, "race.chain.outer"};
  Mutex mid{Rank::kSlotArbiter, "race.chain.mid"};
  Mutex leaf{Rank::kMetrics, "race.chain.leaf"};
  CondVar cv;
  std::uint64_t turns = 0;  // guarded by mid
  std::atomic<std::uint64_t> laps{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        switch ((t + i) % 3) {
          case 0: {  // full chain, innermost released first
            MutexLock lo(outer);
            MutexLock lm(mid);
            MutexLock ll(leaf);
            laps.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case 1: {  // try_lock joins the stack without an order check
            MutexLock ll(leaf);
            if (mid.try_lock()) {
              ++turns;
              mid.unlock();
            }
            break;
          }
          default: {  // CondVar wait releases mid out of stack order
            MutexLock lo(outer);
            MutexLock lm(mid);
            cv.notify_one();
            if (turns % 7 == 0) {
              cv.wait_for(lm, std::chrono::microseconds(50));
            }
            ++turns;
            break;
          }
        }
#if ECLIPSE_LOCK_VALIDATOR_ENABLED
        ASSERT_EQ(lock_order::HeldDepth(), 0)
            << "held stack leaked on thread " << t << " iteration " << i;
#endif
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread's case-0 arm ran ~4000/3 times; the exact split depends on
  // the (t + i) phase, so pin a floor rather than the precise count.
  EXPECT_GE(laps.load(), 8u * 1333u);
  EXPECT_GE(turns, 1u);
}

TEST(RaceStress, TraceEmissionVsCaptureControl) {
  // Span emission from many threads racing Start/Stop/Clear/Snapshot on the
  // global tracer: the per-thread buffers are lock-free on the append path
  // and the session counter invalidates stale chunks, so no interleaving may
  // tear an event or resurrect a cleared one. Run under TSan, this is the
  // race detector for the whole obs layer.
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 6; ++t) {
    emitters.emplace_back([t, &stop] {
      std::uint64_t i = 0;
      while (!stop.load()) {
        obs::TraceSpan span("mr", "map_task", t, {obs::U64("block", i++)});
        span.AddArg(obs::Str("locality", "remote_disk"));
        obs::Tracer::Global().Emit('i', "cache", "peer_fetch", t,
                                   {obs::Str("result", "hit")});
        // Throttle production so the controller's snapshots/exports stay
        // cheap — the point is the interleaving, not the event volume.
        if (i % 2048 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::thread controller([&] {
    for (int i = 0; i < 20; ++i) {
      (void)obs::Tracer::Global().Snapshot();
      if (i % 5 == 2) obs::Tracer::Global().Start();  // new session mid-emission
      if (i % 5 == 4) obs::Tracer::Global().Clear();
      if (i % 5 == 0) (void)obs::Tracer::Global().ExportChromeTrace();
    }
  });
  controller.join();
  stop.store(true);
  // Snapshot while emitter threads are still alive (their buffers are
  // reclaimed at thread exit), then let them drain.
  auto events = tracer.Snapshot();
  for (auto& e : emitters) e.join();
  tracer.Stop();
  tracer.Clear();
  // No structural assertion beyond "didn't crash / no TSan report": the
  // capture content is timing-dependent by construction here.
  (void)events;
}

TEST(RaceStress, ExecutorStealVsCancel) {
  // Thieves pulling tasks off a victim's deque race a flipper setting the
  // cancellation token mid-stream. The executor's contract: every future is
  // satisfied no matter the interleaving (bodies turn a flipped token into a
  // cancelled result; the executor never drops a task). TSan checks the
  // token handoff through a steal is synchronized; the counters check
  // nothing is lost or doubled.
  sched::TaskExecutor::Options opts;
  opts.threads_per_shard = 1;
  sched::TaskExecutor exec(4, opts);
  constexpr int kRounds = 50;
  constexpr int kTasks = 64;
  for (int round = 0; round < kRounds; ++round) {
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::atomic<int> ran{0};
    std::vector<std::future<bool>> futs;
    futs.reserve(kTasks);
    std::thread flipper([&cancel] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      cancel->store(true, std::memory_order_release);
    });
    for (int i = 0; i < kTasks; ++i) {
      // All onto shard 0: completion of the tail requires steals while the
      // flipper races the token.
      futs.push_back(exec.Submit(0, [&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        return true;
      }, cancel));
    }
    int satisfied = 0;
    for (auto& f : futs) {
      f.get();
      ++satisfied;
    }
    flipper.join();
    ASSERT_EQ(satisfied, kTasks) << "round " << round;
    ASSERT_EQ(ran.load(), kTasks) << "round " << round;
  }
  exec.Drain();
}

TEST(RaceStress, ConnPoolReleaseVsCloseAll) {
  // The shutdown race from the ConnPool bugfix: a Release landing after
  // CloseAll swapped the idle map out used to re-create a stash entry, so
  // the socket silently survived shutdown and could be handed out stale
  // later. Hammer Release from several threads while CloseAll fires in the
  // middle; afterwards every fd handed to the pool must be closed — either
  // it was stashed in time and CloseAll swept it, or it hit the closed_
  // gate and Release closed it directly. Nothing may be left for reuse.
  for (int round = 0; round < 50; ++round) {
    net::ConnPool pool(/*max_idle_per_peer=*/64);
    constexpr int kThreads = 4;
    constexpr int kFdsPerThread = 16;
    std::vector<std::vector<int>> fds(kThreads);
    for (auto& mine : fds) {
      for (int i = 0; i < kFdsPerThread; ++i) {
        int pipefd[2];
        ASSERT_EQ(::pipe(pipefd), 0);
        mine.push_back(pipefd[0]);
        ::close(pipefd[1]);
      }
    }
    std::atomic<int> ready{0};
    std::vector<std::thread> releasers;
    for (int t = 0; t < kThreads; ++t) {
      releasers.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads + 1) std::this_thread::yield();
        for (int fd : fds[t]) pool.Release("peer", 7000 + t, fd);
      });
    }
    std::thread closer([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads + 1) std::this_thread::yield();
      pool.CloseAll();
    });
    for (auto& r : releasers) r.join();
    closer.join();
    // No open file descriptor may survive the race (no other thread in this
    // test opens fds concurrently, so an EBADF probe is unambiguous).
    for (const auto& mine : fds) {
      for (int fd : mine) {
        errno = 0;
        EXPECT_EQ(::fcntl(fd, F_GETFD), -1)
            << "fd " << fd << " survived CloseAll (round " << round << ")";
        EXPECT_EQ(errno, EBADF);
      }
    }
  }
}

TEST(RaceStress, DispatcherAcceptVsShutdown) {
  // The epoll dispatcher's accept path races endpoint teardown: clients keep
  // connecting and calling over real TCP while the endpoint is repeatedly
  // detached (which drains in-flight handlers and closes the listener) and
  // re-registered on the same port. Every call must complete or fail cleanly
  // — no crash, no std::terminate from a handler outliving its endpoint.
  net::TcpTransport server;
  std::atomic<std::uint64_t> handled{0};
  net::Handler handler = [&handled](net::NodeId, const net::Message& m) {
    handled.fetch_add(1);
    return net::Message{m.type, m.payload};
  };
  const int port = server.RegisterAt(0, handler, 0);
  ASSERT_GT(port, 0);

  net::TcpTransport client;
  client.AddPeer(0, "127.0.0.1", port);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    for (int i = 0; i < 200; ++i) {
      server.Register(0, nullptr);  // drain + close listener
      // Same port so the hammering clients stay aimed at it; the listener
      // closed an instant ago, so rebinding exercises the reuse path too.
      int rebound = server.RegisterAt(0, handler, port);
      ASSERT_EQ(rebound, port);
    }
    stop.store(true);
  });

  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      while (!stop.load()) {
        net::ScopedDeadline sd(net::Deadline::After(std::chrono::milliseconds(250)));
        auto resp = client.Call(1, 0, net::Message{42, "ping"});
        if (resp.ok()) {
          ok.fetch_add(1);
          EXPECT_EQ(resp.value().payload, "ping");
        }
        // Failures surface as Unavailable/DeadlineExceeded; both are clean.
      }
    });
  }
  churn.join();
  for (auto& c : callers) c.join();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GE(handled.load(), ok.load());
}

}  // namespace
}  // namespace eclipse
