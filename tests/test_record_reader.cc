#include "mr/record_reader.h"

#include <gtest/gtest.h>

namespace eclipse::mr {
namespace {

// Harness: slice `content` into blocks of `block_size` and extract each
// block's records through the ownership rules.
struct Harness {
  Harness(std::string text, Bytes block_size) : content(std::move(text)) {
    meta.name = "f";
    meta.size = content.size();
    meta.block_size = block_size;
    meta.num_blocks = dfs::NumBlocks(content.size(), block_size);
  }

  std::string BlockData(std::uint64_t i) const {
    return content.substr(i * meta.block_size, meta.block_size);
  }

  Result<std::vector<std::string>> RecordsOf(std::uint64_t i) const {
    return ExtractRecords(
        meta, i, '\n', BlockData(i),
        [this](std::uint64_t j) -> Result<std::string> { return BlockData(j); },
        [this](std::uint64_t j, Bytes off, Bytes len) -> Result<std::string> {
          std::string b = BlockData(j);
          if (off > b.size()) return Status::Error(ErrorCode::kInvalidArgument, "off");
          return b.substr(off, len);
        });
  }

  std::vector<std::string> AllRecords() const {
    std::vector<std::string> all;
    for (std::uint64_t i = 0; i < meta.num_blocks; ++i) {
      auto r = RecordsOf(i);
      EXPECT_TRUE(r.ok());
      for (auto& rec : r.value()) all.push_back(rec);
    }
    return all;
  }

  std::string content;
  dfs::FileMetadata meta;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t p = text.find('\n', start);
    if (p == std::string::npos) p = text.size();
    if (p > start) out.push_back(text.substr(start, p - start));
    start = p + 1;
  }
  return out;
}

TEST(RecordReader, SingleBlockSimple) {
  Harness h("aa\nbb\ncc\n", 100);
  auto r = h.RecordsOf(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"aa", "bb", "cc"}));
}

TEST(RecordReader, UnterminatedLastLine) {
  Harness h("aa\nbb", 100);
  EXPECT_EQ(h.AllRecords(), (std::vector<std::string>{"aa", "bb"}));
}

TEST(RecordReader, RecordSpansBlocks) {
  // Block size 4: "aaaaaa\nbb" -> blocks "aaaa", "aa\nb", "b".
  Harness h("aaaaaa\nbb", 4);
  auto b0 = h.RecordsOf(0);
  ASSERT_TRUE(b0.ok());
  EXPECT_EQ(b0.value(), (std::vector<std::string>{"aaaaaa"}))
      << "block 0 owns the record it starts and completes it from block 1";
  auto b1 = h.RecordsOf(1);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1.value(), (std::vector<std::string>{"bb"}))
      << "block 1 owns 'bb' (starts at its offset 3); partial head skipped";
  auto b2 = h.RecordsOf(2);
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(b2.value().empty()) << "'b' continues a record started earlier";
}

TEST(RecordReader, BoundaryExactlyAtDelimiter) {
  // "aaa\n" fills block 0 exactly; record "bbb" starts at block 1 byte 0.
  Harness h("aaa\nbbb\n", 4);
  EXPECT_EQ(h.RecordsOf(0).value(), (std::vector<std::string>{"aaa"}));
  EXPECT_EQ(h.RecordsOf(1).value(), (std::vector<std::string>{"bbb"}))
      << "previous block ended in delimiter: no skip";
}

TEST(RecordReader, LongRecordSpanningManyBlocks) {
  std::string rec(20, 'x');
  Harness h(rec + "\nyy\n", 4);
  auto all = h.AllRecords();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], rec);
  EXPECT_EQ(all[1], "yy");
}

TEST(RecordReader, EmptyBlockData) {
  Harness h("", 4);
  EXPECT_TRUE(h.RecordsOf(0).value().empty());
}

TEST(RecordReader, ConsecutiveDelimitersDropEmptyRecords) {
  Harness h("a\n\n\nb\n", 100);
  EXPECT_EQ(h.AllRecords(), (std::vector<std::string>{"a", "b"}));
}

// Exhaustive property: for any content and block size, the union of records
// over all blocks equals the line split of the whole file, each exactly once
// and in order.
class RecordCoverage : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RecordCoverage, EveryRecordExactlyOnce) {
  auto [text_style, block_size] = GetParam();
  std::string text;
  switch (text_style) {
    case 0:
      for (int i = 0; i < 40; ++i) text += "line-" + std::to_string(i) + "\n";
      break;
    case 1:  // variable lengths, no trailing newline
      for (int i = 0; i < 30; ++i) text += std::string(static_cast<std::size_t>(i % 11), 'a' + static_cast<char>(i % 26)) + "\n";
      text += "tail-without-newline";
      break;
    case 2:  // long records vs small blocks
      for (int i = 0; i < 6; ++i) text += std::string(37, static_cast<char>('A' + i)) + "\n";
      break;
    default:  // pathological: empties and singles
      text = "\n\na\n\nbc\nd\n\n";
      break;
  }
  Harness h(text, static_cast<Bytes>(block_size));
  EXPECT_EQ(h.AllRecords(), SplitLines(text))
      << "style=" << text_style << " block_size=" << block_size;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecordCoverage,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3, 5, 7, 16, 64, 1000)));

}  // namespace
}  // namespace eclipse::mr
