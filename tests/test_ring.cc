#include "dht/ring.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dht/finger_table.h"

namespace eclipse::dht {
namespace {

TEST(Ring, AddRemoveContains) {
  Ring ring;
  EXPECT_TRUE(ring.empty());
  ring.AddServer(0);
  ring.AddServer(1);
  ring.AddServer(2);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_TRUE(ring.Contains(1));
  ring.RemoveServer(1);
  EXPECT_FALSE(ring.Contains(1));
  EXPECT_EQ(ring.size(), 2u);
  ring.RemoveServer(99);  // no-op
  EXPECT_EQ(ring.size(), 2u);
}

TEST(Ring, ExplicitPositionsAndNeighbors) {
  Ring ring;
  ASSERT_TRUE(ring.AddServerAt(0, 100));
  ASSERT_TRUE(ring.AddServerAt(1, 200));
  ASSERT_TRUE(ring.AddServerAt(2, 300));
  EXPECT_FALSE(ring.AddServerAt(3, 100));  // position collision
  EXPECT_TRUE(ring.AddServerAt(0, 999));   // a second position = a vnode
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.NumPositions(), 4u);
  EXPECT_EQ(ring.Owner(500), 0) << "vnode at 999 owns (300, 999]";
  ring.RemoveServer(0);
  EXPECT_EQ(ring.NumPositions(), 2u) << "removal drops every vnode";
  ring.AddServerAt(0, 100);  // restore the original layout for the checks below

  EXPECT_EQ(ring.SuccessorOf(0), 1);
  EXPECT_EQ(ring.SuccessorOf(2), 0);  // wraps
  EXPECT_EQ(ring.PredecessorOf(0), 2);
  EXPECT_EQ(ring.PredecessorOf(1), 0);

  EXPECT_EQ(ring.Owner(100), 0);
  EXPECT_EQ(ring.Owner(101), 1);
  EXPECT_EQ(ring.Owner(250), 2);
  EXPECT_EQ(ring.Owner(301), 0);  // wraps to smallest
  EXPECT_EQ(ring.Owner(50), 0);
}

TEST(Ring, SingleServerOwnsEverything) {
  Ring ring;
  ring.AddServerAt(9, 1000);
  EXPECT_EQ(ring.Owner(0), 9);
  EXPECT_EQ(ring.Owner(~HashKey{0}), 9);
  EXPECT_EQ(ring.SuccessorOf(9), 9);
  EXPECT_EQ(ring.PredecessorOf(9), 9);
}

TEST(Ring, ReplicasOwnerSuccessorPredecessor) {
  Ring ring;
  ring.AddServerAt(0, 100);
  ring.AddServerAt(1, 200);
  ring.AddServerAt(2, 300);
  ring.AddServerAt(3, 400);

  auto reps = ring.Replicas(150, 3);  // owner = 1
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_EQ(reps[0], 1);
  EXPECT_EQ(reps[1], 2);  // successor
  EXPECT_EQ(reps[2], 0);  // predecessor
}

TEST(Ring, ReplicasCappedByMembership) {
  Ring ring;
  ring.AddServerAt(0, 100);
  ring.AddServerAt(1, 200);
  auto reps = ring.Replicas(150, 5);
  ASSERT_EQ(reps.size(), 2u);
  std::set<int> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), 2u);
}

TEST(Ring, MakeRangeTableAgreesWithOwner) {
  Ring ring;
  for (int i = 0; i < 10; ++i) ring.AddServer(i);
  RangeTable t = ring.MakeRangeTable();
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    HashKey k = rng.Next();
    EXPECT_EQ(t.Owner(k), ring.Owner(k));
  }
}

// Consistent hashing's minimal-disruption property: removing one server only
// reassigns keys that it owned.
class RingDisruption : public ::testing::TestWithParam<int> {};

TEST_P(RingDisruption, RemovalOnlyMovesVictimsKeys) {
  int n = GetParam();
  Ring ring;
  for (int i = 0; i < n; ++i) ring.AddServer(i);

  Rng rng(99);
  std::vector<HashKey> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());

  std::vector<int> before;
  for (HashKey k : keys) before.push_back(ring.Owner(k));

  int victim = n / 2;
  ring.RemoveServer(victim);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    int after = ring.Owner(keys[i]);
    if (before[i] != victim) {
      EXPECT_EQ(after, before[i]) << "non-victim key moved";
    } else {
      EXPECT_NE(after, victim);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingDisruption, ::testing::Values(2, 4, 8, 40));

TEST(Ring, VirtualNodesEvenOutOwnership) {
  // The balance extension: with v vnodes per server the per-server owned
  // fraction concentrates around 1/n.
  auto spread = [](int vnodes) {
    Ring ring;
    const int n = 10;
    for (int i = 0; i < n; ++i) ring.AddServer(i, vnodes);
    double max_frac = 0, min_frac = 1, total = 0;
    for (int i = 0; i < n; ++i) {
      double f = ring.OwnedFraction(i);
      max_frac = std::max(max_frac, f);
      min_frac = std::min(min_frac, f);
      total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "fractions tile the ring";
    return max_frac / min_frac;
  };
  double skew_1 = spread(1);
  double skew_32 = spread(32);
  EXPECT_LT(skew_32, skew_1) << "vnodes must tighten the ownership spread";
  EXPECT_LT(skew_32, 3.0);
}

TEST(Ring, VirtualNodesKeepReplicaInvariants) {
  Ring ring;
  for (int i = 0; i < 6; ++i) ring.AddServer(i, 8);
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    HashKey k = rng.Next();
    auto reps = ring.Replicas(k, 3);
    ASSERT_EQ(reps.size(), 3u);
    std::set<int> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), 3u) << "replicas must be distinct servers";
    EXPECT_EQ(reps[0], ring.Owner(k));
  }
}

TEST(Ring, VirtualNodesRangeTableAgreesWithOwner) {
  Ring ring;
  for (int i = 0; i < 5; ++i) ring.AddServer(i, 4);
  RangeTable t = ring.MakeRangeTable();
  EXPECT_EQ(t.size(), 20u) << "one range per position";
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    HashKey k = rng.Next();
    EXPECT_EQ(t.Owner(k), ring.Owner(k));
  }
}

TEST(FingerTable, CompleteTableIsOneHop) {
  Ring ring;
  for (int i = 0; i < 12; ++i) ring.AddServer(i);
  std::vector<FingerTable> tables;
  for (int i = 0; i < 12; ++i) tables.emplace_back(ring, i, ring.size());

  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    HashKey k = rng.Next();
    int from = static_cast<int>(rng.Below(12));
    auto path = RoutePath(ring, tables, from, k);
    EXPECT_LE(path.size(), 2u) << "complete table must route in one hop";
    EXPECT_EQ(path.back(), ring.Owner(k));
  }
}

// With m fingers (m >= log2(S)), greedy routing reaches the owner within a
// logarithmic number of hops.
class FingerRouting : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FingerRouting, ReachesOwnerWithinBound) {
  auto [num_servers, m] = GetParam();
  Ring ring;
  for (int i = 0; i < num_servers; ++i) ring.AddServer(i);
  std::vector<FingerTable> tables;
  for (int i = 0; i < num_servers; ++i) {
    tables.emplace_back(ring, i, static_cast<std::size_t>(m));
  }

  Rng rng(41);
  std::size_t worst = 0;
  for (int trial = 0; trial < 200; ++trial) {
    HashKey k = rng.Next();
    int from = static_cast<int>(rng.Below(static_cast<std::uint64_t>(num_servers)));
    auto path = RoutePath(ring, tables, from, k);
    ASSERT_EQ(path.back(), ring.Owner(k));
    worst = std::max(worst, path.size() - 1);
  }
  // Never more hops than servers; with ample fingers, much fewer.
  EXPECT_LE(worst, static_cast<std::size_t>(num_servers));
  if (static_cast<std::size_t>(m) >= ring.size()) {
    EXPECT_LE(worst, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, FingerRouting,
                         ::testing::Values(std::make_tuple(8, 8),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(32, 5),
                                           std::make_tuple(64, 6),
                                           std::make_tuple(64, 64),
                                           std::make_tuple(40, 40)));

TEST(FingerTable, FewerFingersMeansMoreHops) {
  Ring ring;
  for (int i = 0; i < 64; ++i) ring.AddServer(i);

  auto avg_hops = [&](std::size_t m) {
    std::vector<FingerTable> tables;
    for (int i = 0; i < 64; ++i) tables.emplace_back(ring, i, m);
    Rng rng(8);
    double total = 0;
    for (int t = 0; t < 300; ++t) {
      auto path = RoutePath(ring, tables, static_cast<int>(rng.Below(64)), rng.Next());
      total += static_cast<double>(path.size() - 1);
    }
    return total / 300.0;
  };

  double hops_full = avg_hops(64);
  double hops_small = avg_hops(6);
  EXPECT_LE(hops_full, 1.0);
  EXPECT_GT(hops_small, hops_full);
}

}  // namespace
}  // namespace eclipse::dht
