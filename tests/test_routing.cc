// Multi-hop DHT request routing (§II-A): when zero-hop routing is not
// enabled (finger tables smaller than the ring), a block request forwarded
// through finger tables still reaches the key's owner.
#include <gtest/gtest.h>

#include <memory>

#include "dfs/dfs_client.h"
#include "net/dispatcher.h"

namespace eclipse::dfs {
namespace {

class RoutingTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void Boot(int n, std::size_t finger_entries) {
    for (int i = 0; i < n; ++i) ring_.AddServer(i);
    for (int i = 0; i < n; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      nodes_.push_back(std::make_unique<DfsNode>(i, *dispatchers_.back()));
      nodes_.back()->EnableRouting(transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, finger_entries);
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
  }

  net::InProcessTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<DfsNode>> nodes_;
};

TEST_P(RoutingTest, RoutedGetReachesOwnerFromAnyEntry) {
  const std::size_t m = GetParam();
  const int n = 24;
  Boot(n, m);

  // Store objects directly on their owners.
  for (int i = 0; i < 20; ++i) {
    std::string id = "obj-" + std::to_string(i);
    HashKey key = KeyOf(id);
    int owner = ring_.Owner(key);
    nodes_[static_cast<std::size_t>(owner)]->blocks().Put(id, key, "data-" + std::to_string(i));
  }

  for (int i = 0; i < 20; ++i) {
    std::string id = "obj-" + std::to_string(i);
    HashKey key = KeyOf(id);
    for (int entry : {0, 7, 15, 23}) {
      auto got = RoutedGet(transport_, /*caller=*/1000, entry, id, key);
      ASSERT_TRUE(got.ok()) << "entry " << entry << ": " << got.status().ToString();
      EXPECT_EQ(got.value().data, "data-" + std::to_string(i));
      EXPECT_EQ(got.value().owner, ring_.Owner(key));
      if (m >= static_cast<std::size_t>(n)) {
        EXPECT_LE(got.value().hops, 1u) << "complete tables route in one hop";
      } else {
        EXPECT_LE(got.value().hops, static_cast<std::uint32_t>(n));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FingerSizes, RoutingTest, ::testing::Values(3, 5, 8, 24));

TEST_F(RoutingTest, MissAtOwnerIsAuthoritative) {
  Boot(8, 4);
  HashKey key = KeyOf("ghost");
  auto got = RoutedGet(transport_, 1000, 3, "ghost", key);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kNotFound);
}

TEST_F(RoutingTest, HopBudgetBounds) {
  Boot(16, 4);
  std::string id = "thing";
  HashKey key = KeyOf(id);
  int owner = ring_.Owner(key);
  nodes_[static_cast<std::size_t>(owner)]->blocks().Put(id, key, "v");
  // Zero extra hops from a non-owner entry: exhausted (unless entry is the
  // owner or already holds it).
  int entry = (owner + 1) % 16;
  auto got = RoutedGet(transport_, 1000, entry, id, key, /*max_hops=*/0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kResourceExhausted);
}

TEST_F(RoutingTest, ClientReadBlockRouted) {
  Boot(12, 4);
  DfsClientOptions copts;
  copts.default_block_size = 64;
  DfsClient client(1000, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); }, copts);
  std::string content(300, 'q');
  ASSERT_TRUE(client.Upload("routed-file", content).ok());
  auto meta = client.GetMetadata("routed-file").value();

  for (std::uint64_t b = 0; b < meta.num_blocks; ++b) {
    for (int entry : {0, 5, 11}) {
      auto got = client.ReadBlockRouted(meta, b, entry);
      ASSERT_TRUE(got.ok()) << "block " << b << " entry " << entry << ": "
                            << got.status().ToString();
      EXPECT_EQ(got.value(), content.substr(b * 64, 64));
    }
  }
  EXPECT_FALSE(client.ReadBlockRouted(meta, 999, 0).ok());
}

TEST_F(RoutingTest, RoutingDisabledServesLocalOnly) {
  // Nodes without EnableRouting answer from local state.
  net::InProcessTransport transport;
  net::Dispatcher d;
  DfsNode node(0, d);
  transport.Register(0, d.AsHandler());
  node.blocks().Put("here", 1, "local");
  auto got = RoutedGet(transport, 99, 0, "here", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().data, "local");
  EXPECT_FALSE(RoutedGet(transport, 99, 0, "elsewhere", 2).ok());
}

}  // namespace
}  // namespace eclipse::dfs
