// RuntimePredictor unit tests: cold gate, EWMA convergence, size-bucket
// scaling, phase/job independence, and the bounded cell cap.
#include "sched/runtime_predictor.h"

#include <gtest/gtest.h>

#include <string>

namespace eclipse {
namespace {

using sched::PredictPhase;
using sched::PredictorOptions;
using sched::RuntimePredictor;

TEST(RuntimePredictor, ColdUntilMinSamples) {
  RuntimePredictor pred;  // min_samples = 3
  EXPECT_FALSE(pred.Predict("wc", PredictPhase::kMap, 1_MiB).has_value());
  pred.Record("wc", PredictPhase::kMap, 1_MiB, 1000);
  pred.Record("wc", PredictPhase::kMap, 1_MiB, 1000);
  EXPECT_FALSE(pred.Predict("wc", PredictPhase::kMap, 1_MiB).has_value())
      << "two samples must not satisfy a min_samples=3 gate";
  pred.Record("wc", PredictPhase::kMap, 1_MiB, 1000);
  auto p = pred.Predict("wc", PredictPhase::kMap, 1_MiB);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->samples, 3u);
  EXPECT_EQ(p->mean_us, 1000u);
  EXPECT_EQ(pred.TotalSamples(), 3u);
}

TEST(RuntimePredictor, EwmaConvergesAndBoundCoversSpread) {
  RuntimePredictor pred;
  // A long steady regime: the EW mean converges onto it.
  for (int i = 0; i < 100; ++i) pred.Record("wc", PredictPhase::kMap, 1_MiB, 2000);
  auto steady = pred.Predict("wc", PredictPhase::kMap, 1_MiB);
  ASSERT_TRUE(steady.has_value());
  EXPECT_EQ(steady->mean_us, 2000u);
  EXPECT_EQ(steady->bound_us, steady->mean_us) << "zero variance: bound collapses to mean";

  // A regime change: recent samples dominate (alpha = 0.25 halves the gap
  // roughly every 2.4 samples), and the bound now sits above the mean.
  for (int i = 0; i < 30; ++i) pred.Record("wc", PredictPhase::kMap, 1_MiB, 6000);
  auto shifted = pred.Predict("wc", PredictPhase::kMap, 1_MiB);
  ASSERT_TRUE(shifted.has_value());
  EXPECT_GT(shifted->mean_us, 5900u);
  EXPECT_GE(shifted->bound_us, shifted->mean_us);
}

TEST(RuntimePredictor, OutlierCannotSwingTheMean) {
  RuntimePredictor pred;
  for (int i = 0; i < 50; ++i) pred.Record("wc", PredictPhase::kMap, 1_MiB, 1000);
  pred.Record("wc", PredictPhase::kMap, 1_MiB, 100'000);  // one straggler
  auto p = pred.Predict("wc", PredictPhase::kMap, 1_MiB);
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(p->mean_us, 30'000u) << "one outlier moved the EW mean too far";
  EXPECT_GT(p->bound_us, p->mean_us) << "the outlier must widen the variance bound";
}

TEST(RuntimePredictor, CrossBucketPredictionScalesByBytes) {
  RuntimePredictor pred;
  for (int i = 0; i < 5; ++i) pred.Record("sort", PredictPhase::kJob, 1_MiB, 10'000);
  // Twice the input from a neighboring bucket: the estimate scales ~2x.
  auto p = pred.Predict("sort", PredictPhase::kJob, 2_MiB);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(static_cast<double>(p->mean_us), 20'000.0, 200.0);
  // Wild extrapolation is clamped to 8x.
  auto far = pred.Predict("sort", PredictPhase::kJob, 1_GiB);
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ(far->mean_us, 80'000u);
}

TEST(RuntimePredictor, PhasesAndJobNamesAreIndependent) {
  RuntimePredictor pred;
  for (int i = 0; i < 3; ++i) {
    pred.Record("wc", PredictPhase::kMap, 1_MiB, 1000);
    pred.Record("wc", PredictPhase::kReduce, 1_MiB, 5000);
  }
  auto map = pred.Predict("wc", PredictPhase::kMap, 1_MiB);
  auto reduce = pred.Predict("wc", PredictPhase::kReduce, 1_MiB);
  ASSERT_TRUE(map.has_value());
  ASSERT_TRUE(reduce.has_value());
  EXPECT_EQ(map->mean_us, 1000u);
  EXPECT_EQ(reduce->mean_us, 5000u);
  EXPECT_FALSE(pred.Predict("grep", PredictPhase::kMap, 1_MiB).has_value())
      << "an unseen job name must stay cold";
  EXPECT_EQ(pred.CellCount(), 2u);
}

TEST(RuntimePredictor, CellCapBoundsMemory) {
  PredictorOptions options;
  options.max_cells = 4;
  options.min_samples = 1;
  RuntimePredictor pred(options);
  for (int i = 0; i < 32; ++i) {
    pred.Record("job-" + std::to_string(i), PredictPhase::kJob, 1_MiB, 1000);
  }
  EXPECT_EQ(pred.CellCount(), 4u);
  // Keys admitted before the cap keep learning; overflow keys stay cold.
  EXPECT_TRUE(pred.Predict("job-0", PredictPhase::kJob, 1_MiB).has_value());
  EXPECT_FALSE(pred.Predict("job-31", PredictPhase::kJob, 1_MiB).has_value());
}

TEST(RuntimePredictor, OptionsOutOfContractAreClamped) {
  PredictorOptions bad;
  bad.alpha = -1.0;
  bad.min_samples = 0;
  bad.bound_sigmas = -2.0;
  bad.max_cells = 0;
  RuntimePredictor pred(bad);
  EXPECT_GT(pred.options().alpha, 0.0);
  EXPECT_LE(pred.options().alpha, 1.0);
  EXPECT_GE(pred.options().min_samples, 1);
  EXPECT_GE(pred.options().bound_sigmas, 0.0);
  EXPECT_GE(pred.options().max_cells, 1u);
  pred.Record("wc", PredictPhase::kMap, 1_MiB, 500);
  EXPECT_TRUE(pred.Predict("wc", PredictPhase::kMap, 1_MiB).has_value())
      << "min_samples clamps to 1, so one sample suffices";
}

}  // namespace
}  // namespace eclipse
