// LAF scheduler component tests: histogram/KDE, CDF partitioning, and the
// Algorithm 1 behaviours the paper describes (locality, balance, hot-spot
// range narrowing).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sched/cdf_partition.h"
#include "sched/delay_scheduler.h"
#include "sched/fair_scheduler.h"
#include "sched/key_histogram.h"
#include "sched/laf_scheduler.h"
#include "sched/slot_arbiter.h"
#include "sched/task_executor.h"

namespace eclipse::sched {
namespace {

TEST(KeyHistogram, BinOfCoversSpace) {
  KeyHistogram h(16, 1);
  EXPECT_EQ(h.BinOf(0), 0u);
  EXPECT_EQ(h.BinOf(~HashKey{0}), 15u);
  EXPECT_EQ(h.BinOf(HashKey{1} << 63), 8u);  // midpoint
}

TEST(KeyHistogram, BoxKernelSpreadsMass) {
  KeyHistogram h(100, 5);
  HashKey mid = HashKey{1} << 63;  // bin 50
  h.Add(mid);
  double total = 0;
  int touched = 0;
  for (double v : h.window()) {
    total += v;
    if (v > 0) ++touched;
  }
  EXPECT_NEAR(total, 1.0, 1e-9) << "each access contributes unit mass";
  EXPECT_EQ(touched, 5) << "bandwidth k touches k bins";
  EXPECT_NEAR(h.window()[50], 0.2, 1e-9);
  EXPECT_NEAR(h.window()[48], 0.2, 1e-9);
  EXPECT_NEAR(h.window()[52], 0.2, 1e-9);
}

TEST(KeyHistogram, KernelWrapsAroundRing) {
  KeyHistogram h(100, 5);
  h.Add(0);  // bin 0; kernel spans bins {98, 99, 0, 1, 2}
  EXPECT_GT(h.window()[98], 0.0);
  EXPECT_GT(h.window()[99], 0.0);
  EXPECT_GT(h.window()[0], 0.0);
  EXPECT_GT(h.window()[1], 0.0);
  EXPECT_GT(h.window()[2], 0.0);
  EXPECT_EQ(h.window()[50], 0.0);
}

TEST(KeyHistogram, MovingAverageFold) {
  KeyHistogram h(4, 1);
  std::vector<double> ma(4, 0.0);
  h.Add(0);  // bin 0
  h.FoldInto(ma, 0.5);
  EXPECT_NEAR(ma[0], 0.5, 1e-12);  // 0.5*1 + 0.5*0
  EXPECT_EQ(h.window_count(), 0u) << "fold clears the window";

  h.Add(HashKey{1} << 63);  // bin 2
  h.FoldInto(ma, 0.5);
  EXPECT_NEAR(ma[0], 0.25, 1e-12);  // attenuated history
  EXPECT_NEAR(ma[2], 0.5, 1e-12);
}

TEST(KeyHistogram, AlphaOneForgetsHistory) {
  KeyHistogram h(4, 1);
  std::vector<double> ma(4, 0.0);
  h.Add(0);
  h.FoldInto(ma, 1.0);
  h.Add(HashKey{1} << 63);
  h.FoldInto(ma, 1.0);
  EXPECT_NEAR(ma[0], 0.0, 1e-12) << "alpha=1 keeps only the current window";
  EXPECT_NEAR(ma[2], 1.0, 1e-12);
}

TEST(CdfPartition, UniformPdfGivesEqualRanges) {
  std::vector<double> pdf(64, 1.0);
  auto cdf = ConstructCdf(pdf);
  auto table = PartitionCdf(cdf, {0, 1, 2, 3});
  // Each server's range should span ~1/4 of the keyspace.
  for (int s = 0; s < 4; ++s) {
    double frac = static_cast<double>(table.RangeOf(s).Width()) /
                  std::pow(2.0, 64);
    EXPECT_NEAR(frac, 0.25, 0.02) << "server " << s;
  }
}

TEST(CdfPartition, ZeroMassFallsBackToUniform) {
  std::vector<double> pdf(32, 0.0);
  auto cdf = ConstructCdf(pdf);
  auto table = PartitionCdf(cdf, {0, 1});
  EXPECT_NEAR(static_cast<double>(table.RangeOf(0).Width()) / std::pow(2.0, 64), 0.5, 0.05);
}

TEST(CdfPartition, HotRegionGetsNarrowRange) {
  // Fig. 3: popularity around two regions narrows their owners' ranges.
  std::vector<double> pdf(100, 0.1);
  for (int b = 28; b < 32; ++b) pdf[static_cast<std::size_t>(b)] = 10.0;  // hot region ~30%
  auto cdf = ConstructCdf(pdf);
  auto table = PartitionCdf(cdf, {0, 1, 2, 3, 4});

  // The server whose range covers the hot region must have a much narrower
  // range than the widest server.
  HashKey hot_key = static_cast<HashKey>(0.30 * std::pow(2.0, 64));
  int hot_server = table.Owner(hot_key);
  std::uint64_t hot_width = table.RangeOf(hot_server).Width();
  std::uint64_t max_width = 0;
  for (int s = 0; s < 5; ++s) max_width = std::max(max_width, table.RangeOf(s).Width());
  EXPECT_LT(static_cast<double>(hot_width), 0.5 * static_cast<double>(max_width));
}

TEST(CdfPartition, PointMassYieldsEmptyRanges) {
  // The paper's extreme case: one hash key is the only hot spot; interior
  // servers end up with (near-)empty ranges like [40,40).
  std::vector<double> pdf(1000, 0.0);
  pdf[400] = 100.0;
  auto cdf = ConstructCdf(pdf);
  auto table = PartitionCdf(cdf, {0, 1, 2, 3});
  // All four ranges must still tile the ring: every key has an owner.
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_GE(table.Owner(rng.Next()), 0);
  // Middle servers own slivers inside bin 400: each range is tiny.
  double bin_width = std::pow(2.0, 64) / 1000.0;
  EXPECT_LT(static_cast<double>(table.RangeOf(1).Width()), bin_width + 1);
  EXPECT_LT(static_cast<double>(table.RangeOf(2).Width()), bin_width + 1);
}

// Property: the partition always assigns each segment equal probability
// mass under the PDF it was built from.
class CdfEqualProbability : public ::testing::TestWithParam<int> {};

TEST_P(CdfEqualProbability, SegmentsCarryEqualMass) {
  int num_servers = GetParam();
  Rng rng(static_cast<std::uint64_t>(num_servers));
  std::vector<double> pdf(512);
  for (auto& v : pdf) v = rng.NextDouble() + 0.01;
  auto cdf = ConstructCdf(pdf);
  std::vector<int> servers;
  for (int i = 0; i < num_servers; ++i) servers.push_back(i);
  auto bounds = CdfBoundaries(cdf, static_cast<std::size_t>(num_servers));

  // Mass of segment i under the PDF (measured by sampling the CDF at the
  // boundaries via interpolation) must be ~ total/num_servers.
  auto cdf_at = [&](HashKey k) {
    double pos = static_cast<double>(k) / std::pow(2.0, 64) * 512.0;
    auto bin = static_cast<std::size_t>(pos);
    if (bin >= 512) bin = 511;
    double below = bin == 0 ? 0.0 : cdf[bin - 1];
    return below + (cdf[bin] - below) * (pos - static_cast<double>(bin));
  };
  double total = cdf.back();
  for (int i = 0; i + 1 < num_servers; ++i) {
    double lo = cdf_at(bounds[static_cast<std::size_t>(i)]);
    double hi = cdf_at(bounds[static_cast<std::size_t>(i) + 1]);
    EXPECT_NEAR(hi - lo, total / num_servers, total * 0.01)
        << "segment " << i << " of " << num_servers;
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, CdfEqualProbability,
                         ::testing::Values(2, 3, 5, 8, 16, 40));

RangeTable UniformTable(int n) {
  std::vector<std::pair<int, HashKey>> positions;
  for (int i = 0; i < n; ++i) {
    positions.emplace_back(i, static_cast<HashKey>(i + 1) * (~HashKey{0} / static_cast<HashKey>(n)));
  }
  return RangeTable::FromPositions(positions);
}

TEST(LafSchedulerTest, LocalitySameKeySameServer) {
  LafOptions opts;
  opts.window = 1000;  // no repartition during this test
  LafScheduler laf({0, 1, 2, 3}, UniformTable(4), opts);
  HashKey k = KeyOf("popular-block");
  int first = laf.Assign(k);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(laf.Assign(k), first);
}

TEST(LafSchedulerTest, RepartitionsEveryWindow) {
  LafOptions opts;
  opts.window = 10;
  LafScheduler laf({0, 1, 2}, UniformTable(3), opts);
  Rng rng(2);
  for (int i = 0; i < 35; ++i) laf.Assign(rng.Next());
  EXPECT_EQ(laf.repartitions(), 3u);
}

TEST(LafSchedulerTest, SkewedStreamRebalances) {
  // All accesses hit keys near one point: after re-partitioning, tasks
  // spread across servers (the paper's hot-spot replication effect).
  LafOptions opts;
  opts.window = 64;
  opts.alpha = 1.0;  // adapt immediately
  opts.num_bins = 512;
  LafScheduler laf({0, 1, 2, 3}, UniformTable(4), opts);

  Rng rng(6);
  HashKey hot = HashKey{1} << 62;
  std::map<int, int> counts;
  for (int i = 0; i < 2000; ++i) {
    // Keys in a hot band covering ~1/16 of the keyspace (≈32 of the 512
    // histogram bins — comfortably above LAF's bin resolution).
    HashKey k = hot + (rng.Next() >> 4);
    ++counts[laf.Assign(k)];
  }
  // After adaptation every server should receive a meaningful share.
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [server, count] : counts) {
    EXPECT_GT(count, 2000 / 16) << "server " << server << " starved";
  }
  double stddev = CountStdDev(laf.assigned_counts());
  EXPECT_LT(stddev, 2000.0 * 0.15) << "LAF should be roughly balanced";
}

TEST(LafSchedulerTest, AlphaZeroKeepsStaticRanges) {
  LafOptions opts;
  opts.window = 16;
  opts.alpha = 0.0;
  LafScheduler laf({0, 1, 2, 3}, UniformTable(4), opts);
  RangeTable initial = laf.ranges();
  Rng rng(9);
  for (int i = 0; i < 100; ++i) laf.Assign(rng.Next() >> 32);  // skewed low keys
  // alpha = 0: moving average stays zero => CDF uniform => ranges equal
  // quarters, i.e. behaviourally static (paper §II-E).
  for (int s = 0; s < 4; ++s) {
    double frac = static_cast<double>(laf.ranges().RangeOf(s).Width()) / std::pow(2.0, 64);
    EXPECT_NEAR(frac, 0.25, 0.02);
  }
  (void)initial;
}

TEST(DelaySchedulerTest, PreferredFollowsStaticRanges) {
  RangeTable t = UniformTable(4);
  DelayScheduler delay({0, 1, 2, 3}, t);
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    HashKey k = rng.Next();
    EXPECT_EQ(delay.Preferred(k), t.Owner(k));
  }
}

TEST(DelaySchedulerTest, FallbackPicksFreest) {
  DelayScheduler delay({0, 1, 2, 3}, UniformTable(4));
  EXPECT_EQ(delay.Fallback({0, 2, 5, 1}), 2);
  EXPECT_EQ(delay.Fallback({0, 0, 0, 0}), -1);  // everyone saturated
  delay.RecordAssignment(2);
  delay.RecordAssignment(2);
  EXPECT_EQ(delay.assigned_counts()[2], 2u);
}

TEST(FairSchedulerTest, PrefersReplicaHolders) {
  FairScheduler fair(4);
  // Holder 2 has free slots: locality wins.
  EXPECT_EQ(fair.Assign({2, 3}, {1, 1, 1, 0}), 2);
  // No holder free: least-loaded free server.
  int s = fair.Assign({3}, {1, 1, 1, 0});
  EXPECT_TRUE(s == 0 || s == 1);
  // Nothing free at all.
  EXPECT_EQ(fair.Assign({0}, {0, 0, 0, 0}), -1);
}

TEST(CountStdDevTest, Values) {
  EXPECT_DOUBLE_EQ(CountStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(CountStdDev({5, 5, 5}), 0.0);
  EXPECT_NEAR(CountStdDev({0, 10}), 5.0, 1e-12);
}

// ---- SlotArbiter: cross-job slot accounting and weighted fairness --------

namespace {
/// Spin until `fn()` is true or ~2 s elapse (the arbiter has no futures to
/// join; waiter visibility is the only observable ordering signal).
bool Eventually(const std::function<bool()>& fn) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!fn()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}
}  // namespace

TEST(SlotArbiter, AcquireReleaseAccounting) {
  SlotArbiter arb;
  arb.AddWorker(0, 2, 1);
  EXPECT_EQ(arb.FreeSlots(0, SlotKind::kMap), 2);
  EXPECT_EQ(arb.FreeSlots(0, SlotKind::kReduce), 1);
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "a").ok());
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "a").ok());
  EXPECT_EQ(arb.FreeSlots(0, SlotKind::kMap), 0);
  EXPECT_EQ(arb.InUse("a"), 2);
  arb.Release(0, SlotKind::kMap, "a");
  EXPECT_EQ(arb.FreeSlots(0, SlotKind::kMap), 1);
  EXPECT_EQ(arb.InUse("a"), 1);
  arb.Release(0, SlotKind::kMap, "a");
  EXPECT_EQ(arb.InUse("a"), 0);
  // Unknown worker fails immediately.
  EXPECT_EQ(arb.Acquire(9, SlotKind::kMap, "a").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(arb.FreeSlots(9, SlotKind::kMap), 0);
}

TEST(SlotArbiter, ContendedSlotGoesToSmallestShare) {
  // b holds nothing, a holds two slots elsewhere: when the contended slot on
  // worker 0 frees, max-min fairness must hand it to b, regardless of who
  // queued first.
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  arb.AddWorker(1, 2, 0);
  ASSERT_TRUE(arb.Acquire(1, SlotKind::kMap, "a").ok());
  ASSERT_TRUE(arb.Acquire(1, SlotKind::kMap, "a").ok());
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "c").ok());  // the contended slot
  std::atomic<int> a_state{0}, b_state{0};
  std::thread ta([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "a").ok());
    a_state.store(1);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 1; }));
  std::thread tb([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "b").ok());
    b_state.store(1);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 2; }));

  arb.Release(0, SlotKind::kMap, "c");
  ASSERT_TRUE(Eventually([&] { return b_state.load() == 1; }))
      << "slot went to the larger-share user";
  EXPECT_EQ(a_state.load(), 0);
  arb.Release(0, SlotKind::kMap, "b");
  ASSERT_TRUE(Eventually([&] { return a_state.load() == 1; }));
  ta.join();
  tb.join();
  arb.Release(0, SlotKind::kMap, "a");
  arb.Release(1, SlotKind::kMap, "a");
  arb.Release(1, SlotKind::kMap, "a");
  EXPECT_EQ(arb.InUse("a"), 0);
  EXPECT_EQ(arb.InUse("b"), 0);
  EXPECT_GE(arb.ContendedGrants(), 2u);
}

TEST(SlotArbiter, WeightScalesShare) {
  // a and b each hold one slot, but b's weight is 4: b's share (1/4) is
  // smaller than a's (1/1), so the freed contended slot goes to b.
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  arb.AddWorker(1, 2, 0);
  arb.SetWeight("b", 4.0);
  ASSERT_TRUE(arb.Acquire(1, SlotKind::kMap, "a").ok());
  ASSERT_TRUE(arb.Acquire(1, SlotKind::kMap, "b").ok());
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "c").ok());
  std::atomic<int> winner{0};
  std::thread ta([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "a").ok());
    int expected = 0;
    winner.compare_exchange_strong(expected, 1);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 1; }));
  std::thread tb([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "b").ok());
    int expected = 0;
    winner.compare_exchange_strong(expected, 2);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 2; }));
  arb.Release(0, SlotKind::kMap, "c");
  ASSERT_TRUE(Eventually([&] { return winner.load() != 0; }));
  EXPECT_EQ(winner.load(), 2) << "weight-4 user should win the contended slot";
  arb.Release(0, SlotKind::kMap, "b");
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 0; }));
  ta.join();
  tb.join();
  arb.Release(0, SlotKind::kMap, "a");
  arb.Release(1, SlotKind::kMap, "a");
  arb.Release(1, SlotKind::kMap, "b");
}

TEST(SlotArbiter, SameUserWaitersAreFifo) {
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
  std::vector<int> order;
  Mutex order_mu{Rank::kTest, "test.order_mu"};
  std::thread t1([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
    MutexLock l(order_mu);
    order.push_back(1);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 1; }));
  std::thread t2([&] {
    ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
    MutexLock l(order_mu);
    order.push_back(2);
  });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 2; }));
  arb.Release(0, SlotKind::kMap, "u");
  ASSERT_TRUE(Eventually([&] {
    MutexLock l(order_mu);
    return order.size() == 1;
  }));
  arb.Release(0, SlotKind::kMap, "u");
  ASSERT_TRUE(Eventually([&] {
    MutexLock l(order_mu);
    return order.size() == 2;
  }));
  t1.join();
  t2.join();
  {
    // Scoped: Release takes SlotArbiter::mu_ (rank kSlotArbiter), which may
    // not be acquired while the leaf-ranked test lock is held.
    MutexLock l(order_mu);
    EXPECT_EQ(order, (std::vector<int>{1, 2})) << "same-user grants must stay FIFO";
  }
  arb.Release(0, SlotKind::kMap, "u");
}

TEST(SlotArbiter, RemoveWorkerFailsWaitersAndAbsorbsReleases) {
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
  Status waiter_status;
  std::thread t([&] { waiter_status = arb.Acquire(0, SlotKind::kMap, "u"); });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 1; }));
  arb.RemoveWorker(0);
  t.join();
  EXPECT_EQ(waiter_status.code(), ErrorCode::kUnavailable);
  // The held slot can still be returned; it is absorbed, not re-granted.
  arb.Release(0, SlotKind::kMap, "u");
  EXPECT_EQ(arb.InUse("u"), 0);
  EXPECT_EQ(arb.Acquire(0, SlotKind::kMap, "u").code(), ErrorCode::kUnavailable);
}

TEST(SlotArbiter, CancellationTokenAbortsWait) {
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
  std::atomic<bool> cancel{false};
  Status waiter_status;
  std::thread t([&] { waiter_status = arb.Acquire(0, SlotKind::kMap, "u", &cancel); });
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == 1; }));
  cancel.store(true);
  arb.Poke();
  t.join();
  EXPECT_EQ(waiter_status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(arb.InUse("u"), 1) << "cancelled waiter must not be charged a slot";
  arb.Release(0, SlotKind::kMap, "u");
  EXPECT_EQ(arb.FreeSlots(0, SlotKind::kMap), 1);
}

// Satellite 3: the thundering-herd fix. A release must signal exactly the
// waiter it grants, never the whole queue — with N waiters draining through
// one slot, a broadcast design pays ~N^2/2 wakeups, a targeted one pays N.
TEST(SlotArbiter, BoundedWakeupsPerRelease) {
  SlotArbiter arb;
  arb.AddWorker(0, 1, 0);
  ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
  constexpr int kWaiters = 8;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      ASSERT_TRUE(arb.Acquire(0, SlotKind::kMap, "u").ok());
      arb.Release(0, SlotKind::kMap, "u");  // cascade to the next waiter
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  ASSERT_TRUE(Eventually([&] { return arb.Waiting() == kWaiters; }));
  const std::uint64_t before = arb.WakeupSignals();
  arb.Release(0, SlotKind::kMap, "u");
  ASSERT_TRUE(Eventually([&] { return done.load(std::memory_order_relaxed) == kWaiters; }));
  for (auto& t : threads) t.join();
  const std::uint64_t signals = arb.WakeupSignals() - before;
  // One targeted signal per grant: exactly kWaiters. (The old broadcast
  // notified every remaining waiter on each release: 8+7+...+1 = 36.)
  EXPECT_EQ(signals, static_cast<std::uint64_t>(kWaiters));
}

TEST(TaskExecutor, RunsTasksAndReturnsResults) {
  TaskExecutor exec(2);
  auto f1 = exec.Submit(0, [] { return 41 + 1; });
  auto f2 = exec.Submit(1, [] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
  EXPECT_GE(exec.ExecutedTasks(), 2u);
}

// Satellite 4: steal correctness. Shard 0's only thread is parked inside a
// gate task, so the 64 tasks queued behind it can *only* complete via
// steals by the other shards' threads — and each must run exactly once.
TEST(TaskExecutor, StolenTasksRunExactlyOnce) {
  TaskExecutor::Options opts;
  opts.threads_per_shard = 1;
  TaskExecutor exec(4, opts);
  std::atomic<bool> gate_open{false};
  auto gate = exec.Submit(0, [&gate_open] {
    while (!gate_open.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(exec.Submit(0, [&runs, i] {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futs) f.get();  // completes while shard 0's thread is gated
  EXPECT_GE(exec.StolenTasks(), 1u);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(std::memory_order_relaxed), 1) << "task " << i;
  }
  gate_open.store(true, std::memory_order_release);
  gate.get();
}

// Steal correctness under churn: concurrent submitters spraying every
// shard while every thread runs and steals; no task may be lost or run
// twice, and Drain must observe a fully quiesced executor.
TEST(TaskExecutor, ChurnNeverLosesOrDoublesTasks) {
  TaskExecutor::Options opts;
  opts.threads_per_shard = 2;
  TaskExecutor exec(4, opts);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  std::vector<std::atomic<int>> runs(kSubmitters * kPerSubmitter);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&exec, &runs, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        int idx = s * kPerSubmitter + i;
        exec.Post(static_cast<std::size_t>(idx) % exec.shard_count(),
                  [&runs, idx] { runs[idx].fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  exec.Drain();
  for (int i = 0; i < kSubmitters * kPerSubmitter; ++i) {
    ASSERT_EQ(runs[i].load(std::memory_order_relaxed), 1) << "task " << i;
  }
  EXPECT_EQ(exec.ExecutedTasks(), static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
}

// Satellite 4: cancellation propagates through steals. The token is set
// before the tasks are queued behind a gated shard; thieves run them all
// (futures must always be satisfied) and every body observes the token,
// wherever it ran.
TEST(TaskExecutor, CancellationTokenVisibleToStolenTasks) {
  TaskExecutor::Options opts;
  opts.threads_per_shard = 1;
  TaskExecutor exec(4, opts);
  std::atomic<bool> gate_open{false};
  auto gate = exec.Submit(0, [&gate_open] {
    while (!gate_open.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto cancel = std::make_shared<std::atomic<bool>>(true);
  constexpr int kTasks = 32;
  std::vector<std::future<bool>> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(exec.Submit(
        0, [cancel] { return cancel->load(std::memory_order_acquire); }, cancel));
  }
  int saw_cancel = 0;
  for (auto& f : futs) saw_cancel += f.get() ? 1 : 0;
  EXPECT_EQ(saw_cancel, kTasks) << "every stolen task must see the shared token";
  EXPECT_EQ(exec.CancelledBeforeRun(), static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(exec.StolenTasks(), 1u);
  gate_open.store(true, std::memory_order_release);
  gate.get();
}

TEST(TaskExecutor, AddShardWhileBusy) {
  TaskExecutor::Options opts;
  opts.threads_per_shard = 1;
  opts.max_shards = 8;
  TaskExecutor exec(2, opts);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    exec.Post(static_cast<std::size_t>(i) % 2,
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  std::size_t s = exec.AddShard();
  EXPECT_EQ(s, 2u);
  for (int i = 0; i < 100; ++i) {
    exec.Post(s, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  exec.Drain();
  EXPECT_EQ(ran.load(), 300);
  EXPECT_EQ(exec.shard_count(), 3u);
}

}  // namespace
}  // namespace eclipse::sched
