#include "common/sha1.h"

#include <gtest/gtest.h>

namespace eclipse {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(ToHex(Sha1::Hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(ToHex(Sha1::Hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(ToHex(Sha1::Hash("The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

// Incremental updates must agree with one-shot hashing regardless of how the
// input is chunked.
class Sha1Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1Chunking, MatchesOneShot) {
  std::string msg;
  for (int i = 0; i < 500; ++i) msg += "payload-" + std::to_string(i) + "|";
  Sha1Digest expected = Sha1::Hash(msg);

  Sha1 h;
  std::size_t chunk = GetParam();
  for (std::size_t pos = 0; pos < msg.size(); pos += chunk) {
    h.Update(msg.data() + pos, std::min(chunk, msg.size() - pos));
  }
  EXPECT_EQ(h.Finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha1Chunking,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 127, 128, 1000));

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.Update("first message");
  h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(ToHex(h.Finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, BoundaryLengths) {
  // Messages straddling the padding boundary (55/56/63/64 bytes).
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::string msg(len, 'x');
    Sha1 a;
    a.Update(msg);
    Sha1 b;
    for (char c : msg) b.Update(&c, 1);
    EXPECT_EQ(a.Finish(), b.Finish()) << "len=" << len;
  }
}

}  // namespace
}  // namespace eclipse
