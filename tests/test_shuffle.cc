#include "mr/shuffle.h"

#include <gtest/gtest.h>

#include <map>

#include "dht/ring.h"
#include "net/transport.h"
#include "common/rng.h"

namespace eclipse::mr {
namespace {

TEST(Spill, EncodeDecodeRoundTrip) {
  std::vector<KV> pairs = {{"k1", "v1"}, {"k2", ""}, {"", "v3"}};
  auto back = DecodeSpill(EncodeSpill(pairs));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), pairs);
}

TEST(Spill, DecodeTruncatedFails) {
  auto data = EncodeSpill({{"key", "value"}});
  EXPECT_FALSE(DecodeSpill(data.substr(0, data.size() - 2)).ok());
  EXPECT_FALSE(DecodeSpill("").ok());
}

TEST(Manifest, RoundTrip) {
  std::vector<SpillInfo> spills = {{"id1", 100, 5, 64}, {"id2", 200, 9, 128}};
  auto back = DecodeManifest(EncodeManifest(spills));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[0].id, "id1");
  EXPECT_EQ(back.value()[1].range_begin, 200u);
  EXPECT_EQ(back.value()[1].pairs, 9u);
}

TEST(SpillIdTest, DeterministicAndDistinct) {
  EXPECT_EQ(SpillId("p", 10, 0), SpillId("p", 10, 0));
  EXPECT_NE(SpillId("p", 10, 0), SpillId("p", 10, 1));
  EXPECT_NE(SpillId("p", 10, 0), SpillId("p", 11, 0));
  EXPECT_EQ(ManifestId("tag", "in", 3), "man/tag/in/b3");
}

// The linear-scan reference RouteToRange replaced: first range whose
// [begin, end) interval (reconstructed from the boundary list) covers hk.
std::size_t RouteLinear(const std::vector<HashKey>& begins, HashKey hk) {
  for (std::size_t i = 0; i < begins.size(); ++i) {
    HashKey begin = begins[i];
    HashKey end = begins[(i + 1) % begins.size()];
    bool contains = begin < end ? (hk >= begin && hk < end)  // non-wrapping
                                : (hk >= begin || hk < end);  // wraps past 0
    if (begins.size() == 1 || contains) return i;
  }
  return begins.size();  // unreachable for a tiling boundary set
}

TEST(RouteToRangeTest, MatchesLinearScanOnRandomBoundaryTables) {
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::size_t n = 1 + rng.Below(12);
    std::vector<HashKey> begins;
    for (std::size_t i = 0; i < n; ++i) begins.push_back(rng.Next());
    std::sort(begins.begin(), begins.end());
    begins.erase(std::unique(begins.begin(), begins.end()), begins.end());
    // Random probes plus the adversarial points: each boundary, its
    // neighbors, and the ring extremes.
    std::vector<HashKey> probes;
    for (int i = 0; i < 64; ++i) probes.push_back(rng.Next());
    for (HashKey b : begins) {
      probes.push_back(b);
      probes.push_back(b - 1);
      probes.push_back(b + 1);
    }
    probes.push_back(0);
    probes.push_back(~HashKey{0});
    for (HashKey hk : probes) {
      EXPECT_EQ(RouteToRange(begins, hk), RouteLinear(begins, hk))
          << "round " << round << " hk " << hk;
    }
  }
}

TEST(ForEachGroupTest, MatchesMapGroupingIncludingValueOrder) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    std::vector<KV> pairs;
    std::map<std::string, std::vector<std::string>> expect;
    std::size_t n = rng.Below(200);
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct keys → long runs; values unique so order is observable.
      KV kv{"k" + std::to_string(rng.Below(9)), "v" + std::to_string(i)};
      expect[kv.key].push_back(kv.value);
      pairs.push_back(std::move(kv));
    }
    std::map<std::string, std::vector<std::string>> got;
    std::vector<std::string> key_order;
    EXPECT_TRUE(ForEachGroup(pairs, [&](const std::string& key,
                                        std::vector<std::string>& values) {
      key_order.push_back(key);
      got[key] = values;
      return true;
    }));
    EXPECT_EQ(got, expect) << "round " << round;
    // Ascending distinct keys, exactly once each — the std::map iteration
    // order the reduce path used to rely on.
    EXPECT_TRUE(std::is_sorted(key_order.begin(), key_order.end()));
    EXPECT_EQ(key_order.size(), expect.size());
  }
}

TEST(ForEachGroupTest, EarlyStopReturnsFalse) {
  std::vector<KV> pairs = {{"b", "1"}, {"a", "2"}, {"b", "3"}};
  int calls = 0;
  EXPECT_FALSE(ForEachGroup(pairs, [&](const std::string&, std::vector<std::string>&) {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(ForEachGroup(pairs, [](const std::string&, std::vector<std::string>&) {
    return true;
  }));
}

TEST(DecodeSpillIntoTest, AppendsAcrossSpills) {
  std::vector<KV> a = {{"k1", "v1"}, {"k2", "v2"}};
  std::vector<KV> b = {{"k3", "v3"}};
  std::vector<KV> out;
  ASSERT_TRUE(DecodeSpillInto(EncodeSpill(a), &out).ok());
  ASSERT_TRUE(DecodeSpillInto(EncodeSpill(b), &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "k1");
  EXPECT_EQ(out[2].value, "v3");
  EXPECT_FALSE(DecodeSpillInto("garbage", &out).ok());
}

class ShuffleWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) ring_.AddServer(i);
    for (int i = 0; i < 4; ++i) {
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      nodes_.push_back(std::make_unique<dfs::DfsNode>(i, *dispatchers_.back()));
      transport_.Register(i, dispatchers_.back()->AsHandler());
    }
    client_ = std::make_unique<dfs::DfsClient>(100, transport_, [this] { return std::make_shared<const dht::Ring>(ring_); });
  }

  net::InProcessTransport transport_;
  dht::Ring ring_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<dfs::DfsNode>> nodes_;
  std::unique_ptr<dfs::DfsClient> client_;
};

TEST_F(ShuffleWriterTest, FlushPersistsAllPairs) {
  RangeTable ranges = ring_.MakeRangeTable();
  ShuffleWriter w("im/job/b0", ranges, *client_, 1_MiB, std::chrono::milliseconds(0));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(w.Add("key-" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE(w.Flush().ok());
  ASSERT_FALSE(w.spills().empty());

  // Reading every spill back recovers exactly the 100 pairs.
  std::size_t total = 0;
  for (const auto& spill : w.spills()) {
    auto data = client_->GetObject(spill.id, spill.range_begin);
    ASSERT_TRUE(data.ok());
    auto pairs = DecodeSpill(data.value());
    ASSERT_TRUE(pairs.ok());
    total += pairs.value().size();
    EXPECT_EQ(pairs.value().size(), spill.pairs);
    // Every key in this spill must hash into the spill's range.
    KeyRange range;
    for (const auto& [server, kr] : ranges.entries()) {
      if (kr.begin == spill.range_begin && !kr.IsEmpty()) range = kr;
    }
    for (const auto& kv : pairs.value()) {
      EXPECT_TRUE(range.Contains(KeyOf(kv.key))) << kv.key;
    }
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(ShuffleWriterTest, ThresholdTriggersEarlySpills) {
  RangeTable ranges = ring_.MakeRangeTable();
  ShuffleWriter w("im/job/b1", ranges, *client_, 64, std::chrono::milliseconds(0));
  // Push enough into one range to cross the 64-byte threshold repeatedly.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(w.Add("constant-key", std::string(16, 'v')).ok());
  }
  // Spills happened before Flush.
  EXPECT_GT(w.spills().size(), 1u);
  ASSERT_TRUE(w.Flush().ok());
}

TEST_F(ShuffleWriterTest, SpillLandsOnRangeOwner) {
  RangeTable ranges = ring_.MakeRangeTable();
  ShuffleWriter w("im/job/b2", ranges, *client_, 1_MiB, std::chrono::milliseconds(0));
  ASSERT_TRUE(w.Add("some-key", "v").ok());
  ASSERT_TRUE(w.Flush().ok());
  ASSERT_EQ(w.spills().size(), 1u);
  const auto& spill = w.spills()[0];
  int owner = ranges.Owner(spill.range_begin);
  EXPECT_TRUE(nodes_[static_cast<std::size_t>(owner)]->blocks().Contains(spill.id))
      << "proactive shuffle must place the spill reducer-side";
}

TEST_F(ShuffleWriterTest, DeterministicAcrossReruns) {
  RangeTable ranges = ring_.MakeRangeTable();
  auto run = [&] {
    ShuffleWriter w("im/job/b3", ranges, *client_, 64, std::chrono::milliseconds(0));
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(w.Add("key-" + std::to_string(i % 7), "payload-" + std::to_string(i)).ok());
    }
    EXPECT_TRUE(w.Flush().ok());
    return w.spills();
  };
  auto first = run();
  auto second = run();  // re-execution overwrites identical ids
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].pairs, second[i].pairs);
  }
}

}  // namespace
}  // namespace eclipse::mr
