// Cluster-simulator behaviour tests: the directional properties each paper
// figure depends on must hold before the benches regenerate the figures.
#include <gtest/gtest.h>

#include "sim/eclipse_sim.h"
#include "sim/hadoop_sim.h"
#include "sim/spark_sim.h"
#include "workload/generators.h"

namespace eclipse::sim {
namespace {

SimConfig SmallConfig(int nodes = 10) {
  SimConfig cfg;
  cfg.num_nodes = nodes;
  cfg.block_size = 128_MiB;
  cfg.cache_per_node = 1_GiB;
  return cfg;
}

SimJobSpec ScanJob(AppProfile app, std::uint32_t blocks, const std::string& dataset = "d") {
  SimJobSpec spec;
  spec.app = std::move(app);
  spec.dataset = dataset;
  spec.num_blocks = blocks;
  return spec;
}

TEST(SlotPoolTest, QueueingSemantics) {
  SlotPool pool(2);
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 10.0), 10.0);
  // Third task queues behind the earliest slot.
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 5.0), 15.0);
  EXPECT_DOUBLE_EQ(pool.MakeSpan(), 15.0);
  EXPECT_EQ(pool.total_tasks(), 3u);
  EXPECT_DOUBLE_EQ(pool.EarliestStart(0.0), 10.0);
  EXPECT_FALSE(pool.HasIdleSlot(5.0));
  pool.Reset();
  EXPECT_DOUBLE_EQ(pool.MakeSpan(), 0.0);
}

TEST(SlotPoolTest, LateSubmitStartsAtSubmit) {
  SlotPool pool(1);
  EXPECT_DOUBLE_EQ(pool.Schedule(100.0, 5.0), 105.0);
}

TEST(EclipseSimTest, MoreNodesFinishFaster) {
  auto job = ScanJob(GrepProfile(), 400);
  EclipseSim small(SmallConfig(5), mr::SchedulerKind::kLaf);
  EclipseSim big(SmallConfig(20), mr::SchedulerKind::kLaf);
  double t_small = small.RunJob(job).job_seconds;
  double t_big = big.RunJob(job).job_seconds;
  EXPECT_LT(t_big, t_small);
}

TEST(EclipseSimTest, SecondRunHitsCache) {
  SimConfig cfg = SmallConfig(8);
  cfg.cache_per_node = 64_GiB;  // everything fits
  EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  auto job = ScanJob(GrepProfile(), 200);
  auto cold = sim.RunJob(job);
  auto warm = sim.RunJob(job);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(warm.cache_hits, warm.cache_misses);
  EXPECT_LT(warm.job_seconds, cold.job_seconds);
}

TEST(EclipseSimTest, ZeroCacheNeverHits) {
  SimConfig cfg = SmallConfig(8);
  cfg.cache_per_node = 0;
  EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  auto job = ScanJob(GrepProfile(), 100);
  sim.RunJob(job);
  auto again = sim.RunJob(job);
  EXPECT_EQ(again.cache_hits, 0u);
}

TEST(EclipseSimTest, LafBalancesSkewedTraceBetterThanDelay) {
  // Fig. 7 setup in miniature: accesses drawn from two merged normals.
  Rng rng(3);
  workload::TraceOptions topts;
  topts.shape = workload::TraceShape::kTwoNormals;
  topts.num_blocks = 256;
  topts.length = 4000;
  auto trace = workload::GenerateTrace(rng, topts);

  SimConfig cfg = SmallConfig(10);
  auto job = ScanJob(GrepProfile(), 256);
  job.accesses = trace;

  EclipseSim laf_sim(cfg, mr::SchedulerKind::kLaf);
  EclipseSim delay_sim(cfg, mr::SchedulerKind::kDelay);
  auto laf_result = laf_sim.RunJob(job);
  auto delay_result = delay_sim.RunJob(job);

  EXPECT_LT(laf_result.slot_stddev, delay_result.slot_stddev)
      << "LAF's equal-probability ranges must balance better (Fig. 7)";
  EXPECT_LT(laf_result.job_seconds, delay_result.job_seconds);
}

TEST(EclipseSimTest, DelayAchievesHigherHitRatioOnSkew) {
  // The paper's Fig. 7(b): static ranges + waiting yield more cache hits,
  // at the price of load balance.
  Rng rng(5);
  workload::TraceOptions topts;
  topts.shape = workload::TraceShape::kTwoNormals;
  topts.num_blocks = 512;
  topts.length = 6000;
  auto trace = workload::GenerateTrace(rng, topts);

  SimConfig cfg = SmallConfig(10);
  cfg.cache_per_node = 2_GiB;
  auto job = ScanJob(GrepProfile(), 512);
  job.accesses = trace;

  EclipseSim laf_sim(cfg, mr::SchedulerKind::kLaf,
                     sched::LafOptions{.window = 128, .alpha = 1.0});
  EclipseSim delay_sim(cfg, mr::SchedulerKind::kDelay);
  auto laf_result = laf_sim.RunJob(job);
  auto delay_result = delay_sim.RunJob(job);

  EXPECT_GE(delay_result.HitRatio() + 1e-9, laf_result.HitRatio())
      << "delay keeps keys pinned to static owners";
}

TEST(EclipseSimTest, BiggerCacheRaisesHitRatio) {
  Rng rng(7);
  workload::TraceOptions topts;
  topts.shape = workload::TraceShape::kZipf;
  topts.num_blocks = 400;
  topts.length = 3000;
  auto trace = workload::GenerateTrace(rng, topts);

  auto run_with_cache = [&](Bytes cache) {
    SimConfig cfg = SmallConfig(8);
    cfg.cache_per_node = cache;
    EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
    auto job = ScanJob(GrepProfile(), 400);
    job.accesses = trace;
    return sim.RunJob(job);
  };
  auto small = run_with_cache(512_MiB);
  auto large = run_with_cache(8_GiB);
  EXPECT_GT(large.HitRatio(), small.HitRatio());
  EXPECT_LE(large.job_seconds, small.job_seconds + 1e-9);
}

TEST(EclipseSimTest, BatchSharesDatasetCache) {
  SimConfig cfg = SmallConfig(8);
  cfg.cache_per_node = 64_GiB;
  EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  // Two jobs scanning the same dataset (Fig. 8's word count + grep pair).
  auto j1 = ScanJob(WordCountProfile(), 100, "shared");
  auto j2 = ScanJob(GrepProfile(), 100, "shared");
  auto results = sim.RunBatch({j1, j2});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].cache_hits + results[1].cache_hits, 0u)
      << "interleaved jobs over one dataset must share cached blocks";
}

TEST(EclipseSimTest, HotSpotReplicatesAcrossServers) {
  // Paper §II-E extreme case: one hash key is the only hot spot; LAF's
  // re-partitioning must spread its tasks across (nearly) all servers, each
  // of which caches the hot block.
  SimConfig cfg = SmallConfig(10);
  cfg.cache_per_node = 4_GiB;
  sched::LafOptions laf;
  laf.window = 64;
  laf.alpha = 1.0;
  laf.bandwidth = 1;  // no kernel smoothing: a pure point mass, so all
                      // partition boundaries collapse onto one key
  EclipseSim sim(cfg, mr::SchedulerKind::kLaf, laf);

  SimJobSpec job = ScanJob(GrepProfile(), 64, "hot");
  job.accesses.assign(2000, 7);  // every access hits block 7
  auto r = sim.RunJob(job);

  // After adaptation the hot block is served from many caches: overall hit
  // ratio approaches 1 and the tasks-per-slot spread stays tight.
  EXPECT_GT(r.HitRatio(), 0.8);
  std::uint64_t busy_slots = 0;
  // Static hashing would put all 2000 tasks on ONE server (8 slots); LAF
  // must involve most of the cluster.
  (void)busy_slots;
  EXPECT_LT(r.slot_stddev, 10.0) << "2000 tasks on 80 slots: stddev must be far "
                                    "below the single-server 250/slot pile-up";

  // Delay, by contrast, pins everything to the static owner.
  EclipseSim pinned(cfg, mr::SchedulerKind::kDelay);
  auto rd = pinned.RunJob(job);
  EXPECT_GT(rd.slot_stddev, r.slot_stddev);
  EXPECT_GT(rd.job_seconds, r.job_seconds);
}

TEST(EclipseSimTest, StaggeredArrivalsRespectSubmitTimes) {
  SimConfig cfg = SmallConfig(8);
  EclipseSim sim(cfg, mr::SchedulerKind::kLaf);
  auto early = ScanJob(GrepProfile(), 100, "a");
  auto late = ScanJob(GrepProfile(), 100, "b");
  late.submit_time = 1000.0;  // long after the first job drains
  auto results = sim.RunBatch({early, late});
  // The late job must not be charged for its arrival gap.
  EXPECT_LT(results[1].job_seconds, results[0].job_seconds * 2.0 + 10.0);
  EXPECT_GT(results[0].job_seconds, 0.0);
}

TEST(EclipseSimTest, StragglersHurtLafMoreThanDelay) {
  // LAF ranges ignore server speed; delay's idle-steal routes around slow
  // nodes. A documented sensitivity, not a paper figure.
  SimConfig cfg = SmallConfig(10);
  cfg.slow_nodes = 3;
  cfg.slow_factor = 3.0;
  auto job = ScanJob(KMeansProfile(), 300);

  EclipseSim laf_sim(cfg, mr::SchedulerKind::kLaf);
  EclipseSim delay_sim(cfg, mr::SchedulerKind::kDelay);
  double t_laf = laf_sim.RunJob(job).job_seconds;
  double t_delay = delay_sim.RunJob(job).job_seconds;

  SimConfig homog = SmallConfig(10);
  EclipseSim laf_homog(homog, mr::SchedulerKind::kLaf);
  double t_base = laf_homog.RunJob(job).job_seconds;

  EXPECT_GT(t_laf, t_base) << "stragglers must cost something";
  EXPECT_LT(t_delay, t_laf) << "delay steals around slow nodes";
}

TEST(HadoopSimTest, SlowerThanEclipsePerJob) {
  auto job = ScanJob(WordCountProfile(), 300);
  EclipseSim eclipse(SmallConfig(10), mr::SchedulerKind::kLaf);
  HadoopSim hadoop(SmallConfig(10));
  double t_e = eclipse.RunJob(job).job_seconds;
  double t_h = hadoop.RunJob(job).job_seconds;
  EXPECT_LT(t_e, t_h) << "container + NameNode overheads must show (Fig. 5b/9)";
}

TEST(HadoopSimTest, IterativeJobsPayEveryIteration) {
  auto job = ScanJob(KMeansProfile(), 100);
  job.iterations = 3;
  HadoopSim hadoop(SmallConfig(10));
  auto result = hadoop.RunJob(job);
  ASSERT_EQ(result.iteration_seconds.size(), 3u);
  // No caching: iteration 2/3 cost about the same as iteration 1.
  EXPECT_GT(result.iteration_seconds[1], 0.8 * result.iteration_seconds[0]);
  EXPECT_GT(result.iteration_seconds[2], 0.8 * result.iteration_seconds[0]);
}

TEST(SparkSimTest, FirstIterationSlowestThenCached) {
  auto job = ScanJob(KMeansProfile(), 200);
  job.iterations = 5;
  SparkSim spark(SmallConfig(10));
  auto result = spark.RunJob(job);
  ASSERT_EQ(result.iteration_seconds.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LT(result.iteration_seconds[i], 0.7 * result.iteration_seconds[0])
        << "RDD-cached iterations must be much faster (Fig. 10)";
  }
  EXPECT_GT(result.cache_hits, 0u);
}

TEST(SparkSimTest, LastPageRankIterationWritesOutput) {
  auto job = ScanJob(PageRankProfile(), 60);
  job.iterations = 4;
  SparkSim spark(SmallConfig(10));
  auto result = spark.RunJob(job);
  ASSERT_EQ(result.iteration_seconds.size(), 4u);
  EXPECT_GT(result.iteration_seconds[3], result.iteration_seconds[2])
      << "final output write must slow the last iteration (Fig. 10c)";
}

TEST(SparkSimTest, EclipseFasterOnIterativeCompute) {
  // The Fig. 9 k-means relationship: EclipseMR well ahead of Spark.
  auto job = ScanJob(KMeansProfile(), 200);
  job.iterations = 5;
  SimConfig cfg = SmallConfig(10);
  EclipseSim eclipse(cfg, mr::SchedulerKind::kLaf);
  SparkSim spark(cfg);
  double t_e = eclipse.RunJob(job).job_seconds;
  double t_s = spark.RunJob(job).job_seconds;
  EXPECT_LT(t_e * 1.5, t_s) << "paper reports ~3.5x; at least 1.5x must hold";
}

TEST(SparkSimTest, SparkFasterOnPageRankIterations) {
  // Fig. 9/10c: EclipseMR persists large iteration outputs, Spark does not,
  // so Spark wins page rank middle iterations.
  auto job = ScanJob(PageRankProfile(), 60);
  job.iterations = 4;
  SimConfig cfg = SmallConfig(10);
  EclipseSim eclipse(cfg, mr::SchedulerKind::kLaf);
  SparkSim spark(cfg);
  auto r_e = eclipse.RunJob(job);
  auto r_s = spark.RunJob(job);
  EXPECT_LT(r_s.iteration_seconds[2], r_e.iteration_seconds[2])
      << "Spark must win the no-write middle iterations";
}

TEST(DfsioShapes, HdfsPerJobThroughputCollapses) {
  // Fig. 5: per-map-task throughput similar; per-job throughput divided by
  // container/NameNode overheads on Hadoop.
  auto job = ScanJob(DfsioProfile(), 300);
  SimConfig cfg = SmallConfig(10);
  EclipseSim eclipse(cfg, mr::SchedulerKind::kLaf);
  HadoopSim hadoop(cfg);
  auto r_e = eclipse.RunJob(job);
  auto r_h = hadoop.RunJob(job);

  double per_task_e =
      static_cast<double>(r_e.bytes_read) / (1 << 20) / r_e.map_task_seconds_total;
  double per_task_h =
      static_cast<double>(r_h.bytes_read) / (1 << 20) / r_h.map_task_seconds_total;
  double per_job_e = static_cast<double>(r_e.bytes_read) / (1 << 20) / r_e.job_seconds;
  double per_job_h = static_cast<double>(r_h.bytes_read) / (1 << 20) / r_h.job_seconds;

  EXPECT_GT(per_task_h, 0.1 * per_task_e) << "same disks: same order of magnitude";
  EXPECT_GT(per_job_e, 2.0 * per_job_h) << "DHT FS must dominate bytes/job-time";
}

}  // namespace
}  // namespace eclipse::sim
