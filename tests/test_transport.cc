#include "net/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/serde.h"
#include "net/dispatcher.h"
#include "net/tcp_transport.h"

namespace eclipse::net {
namespace {

Message Echo(NodeId from, const Message& m) {
  Message resp{m.type + 1, "from=" + std::to_string(from) + ":" + m.payload};
  return resp;
}

TEST(InProcessTransport, CallRoundTrip) {
  InProcessTransport t;
  t.Register(1, Echo);
  auto resp = t.Call(0, 1, Message{10, "hello"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().type, 11u);
  EXPECT_EQ(resp.value().payload, "from=0:hello");
}

TEST(InProcessTransport, UnknownNodeIsUnavailable) {
  InProcessTransport t;
  auto resp = t.Call(0, 42, Message{1, ""});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), ErrorCode::kUnavailable);
}

TEST(InProcessTransport, DetachSimulatesCrash) {
  InProcessTransport t;
  t.Register(1, Echo);
  ASSERT_TRUE(t.Call(0, 1, Message{1, ""}).ok());
  t.Register(1, nullptr);
  EXPECT_FALSE(t.Call(0, 1, Message{1, ""}).ok());
}

TEST(InProcessTransport, ConcurrentCalls) {
  InProcessTransport t;
  std::atomic<int> handled{0};
  t.Register(5, [&handled](NodeId, const Message& m) {
    ++handled;
    return m;
  });
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&t, i] {
      for (int j = 0; j < 50; ++j) {
        auto r = t.Call(i, 5, Message{1, "x"});
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(handled.load(), 400);
}

TEST(Dispatcher, RoutesByTypeRange) {
  Dispatcher d;
  d.Route(100, 199, [](NodeId, const Message& m) { return Message{1, "dht" + m.payload}; });
  d.Route(200, 299, [](NodeId, const Message& m) { return Message{2, "dfs" + m.payload}; });
  auto h = d.AsHandler();
  EXPECT_EQ(h(0, Message{150, "!"}).payload, "dht!");
  EXPECT_EQ(h(0, Message{200, "!"}).payload, "dfs!");
  EXPECT_EQ(h(0, Message{299, "!"}).payload, "dfs!");
  // Unrouted type yields an error message.
  Message resp = h(0, Message{999, ""});
  EXPECT_TRUE(IsError(resp));
  EXPECT_EQ(DecodeError(resp).code(), ErrorCode::kInvalidArgument);
}

TEST(ErrorMessageTest, RoundTrip) {
  Message m = ErrorMessage(ErrorCode::kPermission, "nope");
  ASSERT_TRUE(IsError(m));
  Status s = DecodeError(m);
  EXPECT_EQ(s.code(), ErrorCode::kPermission);
  EXPECT_EQ(s.message(), "nope");
}

TEST(TcpTransport, LoopbackRoundTrip) {
  TcpTransport t;
  t.Register(3, Echo);
  ASSERT_GT(t.PortOf(3), 0);
  auto resp = t.Call(9, 3, Message{7, "over tcp"});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().type, 8u);
  EXPECT_EQ(resp.value().payload, "from=9:over tcp");
}

TEST(TcpTransport, LargePayload) {
  TcpTransport t;
  t.Register(1, [](NodeId, const Message& m) { return Message{2, m.payload}; });
  std::string big(512 * 1024, 'z');
  auto resp = t.Call(0, 1, Message{1, big});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().payload, big);
}

TEST(TcpTransport, UnregisteredUnavailable) {
  TcpTransport t;
  EXPECT_EQ(t.Call(0, 77, Message{1, ""}).status().code(), ErrorCode::kUnavailable);
}

TEST(TcpTransport, DetachStopsService) {
  TcpTransport t;
  t.Register(2, Echo);
  ASSERT_TRUE(t.Call(0, 2, Message{1, ""}).ok());
  t.Register(2, nullptr);
  EXPECT_FALSE(t.Call(0, 2, Message{1, ""}).ok());
}

TEST(TcpTransport, ConcurrentClients) {
  TcpTransport t;
  t.Register(1, Echo);
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, &ok, i] {
      for (int j = 0; j < 20; ++j) {
        auto r = t.Call(i, 1, Message{1, std::to_string(j)});
        if (r.ok()) ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 80);
}

}  // namespace
}  // namespace eclipse::net
