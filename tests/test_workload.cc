#include "workload/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/text_util.h"

namespace eclipse::workload {
namespace {

TEST(TextGen, DeterministicAndSized) {
  TextOptions opts;
  opts.target_bytes = 2000;
  Rng a(1), b(1);
  std::string t1 = GenerateText(a, opts);
  std::string t2 = GenerateText(b, opts);
  EXPECT_EQ(t1, t2);
  EXPECT_GE(t1.size(), opts.target_bytes);
  EXPECT_LT(t1.size(), opts.target_bytes + 200);
  EXPECT_EQ(t1.back(), '\n');
}

TEST(TextGen, ZipfSkewShowsInWordFrequencies) {
  TextOptions opts;
  opts.target_bytes = 50000;
  opts.vocabulary = 100;
  opts.zipf_s = 1.2;
  Rng rng(2);
  std::string text = GenerateText(rng, opts);
  std::map<std::string, int> freq;
  for (auto& w : apps::SplitWords(text)) ++freq[w];
  EXPECT_GT(freq["w0"], freq["w50"] * 3) << "rank-0 word must dominate";
}

TEST(DocumentsGen, WellFormed) {
  TextOptions opts;
  Rng rng(3);
  std::string docs = GenerateDocuments(rng, 10, 5, opts);
  auto lines = apps::Split(docs, '\n');
  ASSERT_EQ(lines.size(), 10u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("doc" + std::to_string(i) + "\t", 0), 0u);
    EXPECT_EQ(apps::SplitWords(lines[i].substr(lines[i].find('\t') + 1)).size(), 5u);
  }
}

TEST(PointsGen, DimsAndClusterCenters) {
  PointsOptions opts;
  opts.num_points = 50;
  opts.dims = 3;
  opts.clusters = 2;
  Rng rng(4);
  std::vector<std::vector<double>> centers;
  std::string csv = GeneratePoints(rng, opts, &centers);
  EXPECT_EQ(centers.size(), 2u);
  auto lines = apps::Split(csv, '\n');
  ASSERT_EQ(lines.size(), 50u);
  for (const auto& line : lines) {
    EXPECT_EQ(apps::ParseDoubles(line).size(), 3u);
  }
}

TEST(LabeledGen, LabelsMatchGroundTruthMostly) {
  Rng rng(5);
  std::vector<double> w;
  std::string data = GenerateLabeledPoints(rng, 300, 2, &w);
  ASSERT_EQ(w.size(), 3u);
  int agree = 0, total = 0;
  for (const auto& line : apps::Split(data, '\n')) {
    auto vals = apps::ParseDoubles(line, ' ');
    if (vals.size() != 3) continue;
    double z = w[0] + w[1] * vals[1] + w[2] * vals[2];
    agree += ((z > 0) == (vals[0] > 0.5)) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST(GraphGen, OneLinePerNodeNoSelfLoops) {
  GraphOptions opts;
  opts.num_nodes = 30;
  opts.edges_per_node = 3;
  Rng rng(6);
  std::string graph = GenerateGraph(rng, opts);
  auto lines = apps::Split(graph, '\n');
  ASSERT_EQ(lines.size(), 30u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto fields = apps::SplitWords(lines[i]);
    ASSERT_FALSE(fields.empty());
    EXPECT_EQ(fields[0], "n" + std::to_string(i));
    std::set<std::string> targets(fields.begin() + 1, fields.end());
    EXPECT_EQ(targets.size(), fields.size() - 1) << "duplicate out-edges";
    EXPECT_EQ(targets.count(fields[0]), 0u) << "self loop";
  }
}

TEST(GraphGen, PreferentialAttachmentSkewsInDegree) {
  GraphOptions opts;
  opts.num_nodes = 200;
  opts.edges_per_node = 4;
  Rng rng(7);
  std::string graph = GenerateGraph(rng, opts);
  std::map<std::string, int> in_degree;
  for (const auto& line : apps::Split(graph, '\n')) {
    auto fields = apps::SplitWords(line);
    for (std::size_t i = 1; i < fields.size(); ++i) ++in_degree[fields[i]];
  }
  int max_in = 0;
  double total = 0;
  for (const auto& [node, d] : in_degree) {
    max_in = std::max(max_in, d);
    total += d;
  }
  double mean = total / static_cast<double>(opts.num_nodes);
  EXPECT_GT(max_in, 3 * mean) << "power-law graphs have hubs";
}

TEST(TraceGen, UniformCoversBlocks) {
  TraceOptions opts;
  opts.shape = TraceShape::kUniform;
  opts.num_blocks = 50;
  opts.length = 5000;
  Rng rng(8);
  auto trace = GenerateTrace(rng, opts);
  ASSERT_EQ(trace.size(), 5000u);
  std::set<std::uint32_t> seen(trace.begin(), trace.end());
  EXPECT_GT(seen.size(), 45u);
  for (auto b : trace) EXPECT_LT(b, 50u);
}

TEST(TraceGen, ZipfConcentratesOnLowRanks) {
  TraceOptions opts;
  opts.shape = TraceShape::kZipf;
  opts.num_blocks = 100;
  opts.length = 10000;
  opts.zipf_s = 1.2;
  Rng rng(9);
  auto trace = GenerateTrace(rng, opts);
  std::map<std::uint32_t, int> freq;
  for (auto b : trace) ++freq[b];
  EXPECT_GT(freq[0], freq.count(70) ? freq[70] * 3 : 100);
}

TEST(TraceGen, TwoNormalsIsBimodalInKeySpace) {
  TraceOptions opts;
  opts.shape = TraceShape::kTwoNormals;
  opts.num_blocks = 1000;
  opts.length = 20000;
  opts.mean1 = 0.25;
  opts.mean2 = 0.75;
  opts.stddev1 = opts.stddev2 = 0.03;
  Rng rng(10);
  auto trace = GenerateTrace(rng, opts);

  // Map accesses into key-space deciles via each block's hash key fraction.
  std::vector<int> decile_counts(10, 0);
  for (auto b : trace) {
    double frac = static_cast<double>(TraceBlockKey(b)) / 18446744073709551616.0;
    ++decile_counts[static_cast<std::size_t>(frac * 10)];
  }
  // Deciles 2 and 7 should dominate deciles 0 and 5.
  EXPECT_GT(decile_counts[2], decile_counts[5] * 3);
  EXPECT_GT(decile_counts[7], decile_counts[5] * 3);
  EXPECT_GT(decile_counts[2], decile_counts[0] * 3);
}

}  // namespace
}  // namespace eclipse::workload
