#!/usr/bin/env python3
"""bench_gate: fail CI when the data-path macro benchmarks regress.

Compares a fresh bench_macro_datapath run against the committed baseline
(the newest trajectory point in BENCH_macro.json) and exits non-zero if a
gated metric regressed by more than --tolerance (default 10%).

Gated metrics (lower is better):
    shuffle_add_64r_ns_per_record   per-record cost of ShuffleWriter::Add
    wordcount_cold_ms               end-to-end cold word count
    saturation_ms_per_job_4p4s      per-job cost under multi-process
                                    saturation (4 worker processes x 4
                                    submitters over real TCP); only gated
                                    once both run and baseline carry it
    slo_miss_rate                   fraction of healthy deadline jobs that
                                    missed their (generous) SLO; baseline 0,
                                    so any miss gates
    admission_eta_error             mean relative error of the admission
                                    ETA vs the job's actual completion;
                                    both SLO metrics are ratios, compared
                                    unscaled and with a small absolute
                                    slack for queue-timing jitter

Cross-machine normalization: absolute times differ between the quiet
machine that recorded the baseline and a CI runner, so by default the run's
numbers are rescaled by the ratio of `cache_get_hit_ns_per_op` (a pure
CPU/memory microbench with no scheduler or allocator involvement) between
run and baseline. A runner that is uniformly 1.3x slower then gates at
1.3x the baseline, while a real data-path regression — which moves the
gated metrics without moving the cache microbench — still trips. Disable
with --no-normalize when both runs come from the same machine.

Usage:
    tools/bench_gate.py --run bench_macro_run.json [--baseline BENCH_macro.json]
                        [--tolerance 0.10] [--no-normalize]

Exit codes: 0 within tolerance, 1 regression, 2 usage/schema error.
"""

import argparse
import json
import sys

GATED_METRICS = ["shuffle_add_64r_ns_per_record", "wordcount_cold_ms",
                 "saturation_ms_per_job_4p4s", "slo_miss_rate",
                 "admission_eta_error"]
# Metrics added mid-trajectory: skipped (with a note) when the baseline
# point predates them, so old points still replay through the gate.
OPTIONAL_METRICS = {"saturation_ms_per_job_4p4s", "slo_miss_rate",
                    "admission_eta_error"}
# Ratio metrics: machine speed cancels out (numerator and denominator come
# from the same run), so they compare raw regardless of --no-normalize.
UNSCALED_METRICS = {"slo_miss_rate", "admission_eta_error"}
# Absolute slack added on top of the fractional tolerance: ratios near zero
# make base*(1+tolerance) degenerate, and the ETA error carries inherent
# queue-timing jitter a percentage of a small baseline cannot absorb.
ABS_SLACK = {"slo_miss_rate": 0.0, "admission_eta_error": 0.15}
SCALE_METRIC = "cache_get_hit_ns_per_op"
# A runner more than 4x off the baseline machine (either way) is measuring
# something else entirely; refuse to extrapolate that far.
SCALE_CLAMP = (0.25, 4.0)


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("points", "trajectory"):
        if key in doc:
            points = [p for p in doc[key] if "results" in p]
            if not points:
                raise ValueError(f"{path}: {key} has no points with results")
            return points[-1]["results"], points[-1].get("date", "?")
    return doc, "?"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--run", required=True, help="JSON from bench_macro_datapath --out=...")
    ap.add_argument("--baseline", default="BENCH_macro.json",
                    help="committed baseline (trajectory file or flat run JSON)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (0.10 = 10%%)")
    ap.add_argument("--no-normalize", action="store_true",
                    help="skip machine-speed normalization via " + SCALE_METRIC)
    args = ap.parse_args()

    try:
        with open(args.run, "r", encoding="utf-8") as f:
            run = json.load(f)
        base, base_date = load_baseline(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench_gate: error: {e}", file=sys.stderr)
        return 2

    if run.get("small") != base.get("small"):
        print(f"bench_gate: error: run small={run.get('small')} but baseline "
              f"small={base.get('small')} — sizes must match to compare", file=sys.stderr)
        return 2

    scale = 1.0
    if not args.no_normalize:
        rs, bs = run.get(SCALE_METRIC), base.get(SCALE_METRIC)
        if not rs or not bs:
            print(f"bench_gate: error: {SCALE_METRIC} missing from run or baseline; "
                  f"pass --no-normalize to compare raw numbers", file=sys.stderr)
            return 2
        scale = rs / bs
        clamped = min(max(scale, SCALE_CLAMP[0]), SCALE_CLAMP[1])
        if clamped != scale:
            print(f"bench_gate: warning: machine-speed ratio {scale:.2f} clamped "
                  f"to {clamped:.2f}", file=sys.stderr)
            scale = clamped

    failures = []
    print(f"bench_gate: baseline {args.baseline} ({base_date}), "
          f"tolerance {args.tolerance:.0%}, machine-speed scale {scale:.3f}")
    for metric in GATED_METRICS:
        if metric in OPTIONAL_METRICS and metric not in base:
            print(f"  {metric}: baseline predates this metric -> SKIPPED")
            continue
        if metric not in run or metric not in base:
            failures.append(f"{metric}: missing from {'run' if metric not in run else 'baseline'}")
            continue
        normalized = run[metric] if metric in UNSCALED_METRICS else run[metric] / scale
        limit = base[metric] * (1.0 + args.tolerance) + ABS_SLACK.get(metric, 0.0)
        verdict = "OK" if normalized <= limit else "REGRESSED"
        print(f"  {metric}: run {run[metric]:.3f} (normalized {normalized:.3f}) "
              f"vs baseline {base[metric]:.3f}, limit {limit:.3f} -> {verdict}")
        if normalized > limit:
            failures.append(
                f"{metric}: normalized {normalized:.3f} exceeds limit {limit:.3f} "
                f"(baseline {base[metric]:.3f} + {args.tolerance:.0%})")

    if failures:
        for f in failures:
            print(f"bench_gate: FAIL: {f}", file=sys.stderr)
        return 1
    print("bench_gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
