#!/usr/bin/env python3
"""eclipse-lint: AST-level static analysis for EclipseMR project invariants.

Enforces rules the Clang thread-safety analysis and clang-tidy cannot
express (docs/static-analysis.md has the full catalog):

  mutex-rank       every eclipse::Mutex construction names a Rank:: constant
                   and a string name
  lock-order       no MutexLock whose rank is <= an enclosing MutexLock's
                   rank on a straight-line path through one function
  blocking-call    no blocking call (Transport::Call, net::CallWithRetry,
                   sleep_for/sleep_until, thread join) while holding a
                   non-leaf lock (rank < leaf_rank_floor)
  std-mutex        no std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable outside
                   src/common (everything else uses the ranked wrappers)
  hotpath-new      no `new` expressions in ECLIPSE_HOT_PATH functions
  hotpath-pushback no push_back/emplace_back without a reserve() in the same
                   ECLIPSE_HOT_PATH function
  hotpath-tostring no std::to_string in ECLIPSE_HOT_PATH functions
  hotpath-required the data-path functions in HOT_PATH_REQUIRED must carry
                   the ECLIPSE_HOT_PATH annotation (so renames/rewrites
                   cannot silently drop the zero-alloc enforcement)
  manifest-*       src/common/lock_rank.h, tools/lock_hierarchy.json, the
                   rank table in docs/static-analysis.md, and every Mutex
                   declaration in the tree must agree

Engines:
  clang  libclang over the CMake compile database (precise; used in CI,
         where python3-clang is installed)
  text   dependency-free lexer/scope-tracker fallback (runs anywhere; this
         is also what the ctest `eclipse_lint_tree` check runs)
  auto   clang when importable, else text (default)

Suppression: append `// eclipse-lint: allow(<rule>)` (or allow(all)) to the
offending line or the line above it.

Exit codes: 0 clean, 1 findings, 2 tool error.
"""

import argparse
import bisect
import json
import os
import re
import sys

REPO_RULES = [
    "mutex-rank",
    "lock-order",
    "blocking-call",
    "std-mutex",
    "hotpath-new",
    "hotpath-pushback",
    "hotpath-tostring",
    "hotpath-required",
    "manifest",
]

# Functions on the per-record data path (docs/performance.md). Each must be
# declared with ECLIPSE_HOT_PATH at the definition matched by `pattern`; the
# hot-path rules above then keep them allocation-free. If a signature changes,
# update the pattern here in the same commit.
HOT_PATH_REQUIRED = [
    {"file": "src/mr/shuffle.cc",
     "pattern": r"Status\s+ShuffleWriter::Add\s*\("},
    {"file": "src/mr/shuffle.cc",
     "pattern": r"std::size_t\s+RouteToRange\s*\("},
    {"file": "src/mr/shuffle.h",
     "pattern": r"bool\s+ForEachGroupViews\s*\("},
    {"file": "src/common/arena.h",
     "pattern": r"void\*\s+Allocate\s*\("},
    {"file": "src/common/arena.h",
     "pattern": r"std::string_view\s+CopyString\s*\("},
    {"file": "src/mr/shuffle.h",
     "pattern": r"HashKey\s+Get\s*\("},
]

# Calls that may block indefinitely (RPCs, sleeps, joins). CondVar::wait on
# the *held* lock is the sanctioned wait primitive and is not listed.
BLOCKING_PATTERNS = [
    (re.compile(r"[.>]\s*Call\s*\("), "Transport::Call"),
    (re.compile(r"\bCallWithRetry\s*\("), "net::CallWithRetry"),
    (re.compile(r"\bsleep_for\s*\("), "sleep_for"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until"),
    (re.compile(r"[.>]\s*join\s*\(\s*\)"), "thread join"),
]

STD_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|condition_variable)\b"
)

ALLOW_RE = re.compile(r"eclipse-lint:\s*allow\(([a-z\-, ]+|all)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Source model: comment/string-blanked text with line mapping.
# --------------------------------------------------------------------------

class Source:
    """One file: raw text plus a `code` view where comments and the contents
    of string/char literals are replaced by spaces (structure and newlines
    preserved, so offsets and line numbers are shared with the raw text)."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.code = _blank_noncode(self.raw)
        self._line_starts = [0]
        for i, ch in enumerate(self.raw):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line_of(self, offset):
        return bisect.bisect_right(self._line_starts, offset)

    def line_text(self, lineno):
        start = self._line_starts[lineno - 1]
        end = self.raw.find("\n", start)
        return self.raw[start:] if end == -1 else self.raw[start:end]

    def suppressed(self, lineno, rule):
        for ln in (lineno, lineno - 1):
            if ln < 1 or ln > len(self._line_starts):
                continue
            m = ALLOW_RE.search(self.line_text(ln))
            if m:
                allowed = {r.strip() for r in m.group(1).split(",")}
                if "all" in allowed or rule in allowed:
                    return True
        return False


def _blank_noncode(text):
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def _brace_intervals(code):
    """All {...} intervals as (open_offset, close_offset), innermost
    resolvable by smallest containing interval."""
    stack, intervals = [], []
    for i, c in enumerate(code):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            intervals.append((stack.pop(), i))
    return intervals


def _innermost(intervals, offset):
    best = None
    for a, b in intervals:
        if a < offset < b and (best is None or (b - a) < (best[1] - best[0])):
            best = (a, b)
    return best


# --------------------------------------------------------------------------
# Hierarchy model: enum header + manifest + declarations.
# --------------------------------------------------------------------------

ENUM_ENTRY_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,")
LEAF_FLOOR_RE = re.compile(r"kLeafRankFloor\s*=\s*(\d+)")
# `Mutex name [ATTR(...)...] {Rank::kX, "string"};` — attributes optional,
# initializer may span lines. MutexLock and type uses are excluded below.
MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*((?:(?:ACQUIRED_AFTER|ACQUIRED_BEFORE|GUARDED_BY)"
    r"\s*\([^)]*\)\s*)*)(\{[^{}]*\})?\s*;",
    re.S,
)
RANK_REF_RE = re.compile(r"Rank::k(\w+)")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+(\w+)\s*[({]\s*([^;)}]*?)\s*[)}]\s*;")
HOT_PATH_RE = re.compile(r"\bECLIPSE_HOT_PATH\b")


class Hierarchy:
    def __init__(self, root):
        self.root = root
        self.errors = []
        self.enum = {}       # rank name -> value (from lock_rank.h)
        self.leaf_floor = None
        self.manifest = None
        enum_path = os.path.join(root, "src/common/lock_rank.h")
        manifest_path = os.path.join(root, "tools/lock_hierarchy.json")
        try:
            enum_src = Source(enum_path, "src/common/lock_rank.h")
        except OSError as e:
            self.errors.append(f"cannot read {enum_path}: {e}")
            return
        for m in ENUM_ENTRY_RE.finditer(enum_src.code):
            self.enum["k" + m.group(1)] = int(m.group(2))
        fm = LEAF_FLOOR_RE.search(enum_src.code)
        self.leaf_floor = int(fm.group(1)) if fm else None
        try:
            with open(manifest_path, "r", encoding="utf-8") as f:
                self.manifest = json.load(f)
        except (OSError, ValueError) as e:
            self.errors.append(f"cannot load {manifest_path}: {e}")

    def rank_value(self, rank_name):
        return self.enum.get(rank_name)


def check_manifest(h, root, decls, full_tree=True):
    """Cross-check enum <-> manifest <-> docs <-> source declarations.
    Declaration-coverage checks only run over the full tree (`full_tree`),
    never against a partial explicit file list."""
    findings = []

    def err(msg):
        findings.append(Finding("tools/lock_hierarchy.json", 1, "manifest", msg))

    if h.manifest is None or not h.enum:
        for e in h.errors:
            err(e)
        return findings

    man_ranks = {e["rank"]: e for e in h.manifest.get("ranks", [])}

    # 1. enum <-> manifest: same names, same values, strictly increasing.
    for name, value in sorted(h.enum.items(), key=lambda kv: kv[1]):
        if name not in man_ranks:
            err(f"rank {name} (={value}) is in lock_rank.h but missing from the manifest")
        elif man_ranks[name]["value"] != value:
            err(f"rank {name}: lock_rank.h says {value}, manifest says {man_ranks[name]['value']}")
    for name in man_ranks:
        if name not in h.enum:
            err(f"rank {name} is in the manifest but missing from lock_rank.h")
    values = [v for _, v in sorted(h.enum.items(), key=lambda kv: kv[1])]
    if len(set(values)) != len(values):
        err("duplicate rank values in lock_rank.h")

    # 2. leaf floor agreement.
    if h.leaf_floor != h.manifest.get("leaf_rank_floor"):
        err(f"leaf_rank_floor mismatch: lock_rank.h kLeafRankFloor={h.leaf_floor}, "
            f"manifest leaf_rank_floor={h.manifest.get('leaf_rank_floor')}")

    # 3. every production manifest entry has >= 1 source declaration using
    #    its rank, and every source declaration's rank exists.
    if full_tree:
        used_ranks = {}
        for d in decls:
            used_ranks.setdefault(d["rank"], []).append(d)
        for name, entry in man_ranks.items():
            if name in ("kTest", "kScratch"):
                continue
            if name not in used_ranks:
                err(f"manifest rank {name} ({entry['mutex']}) has no Mutex declaration using it")
            else:
                files = {d["src"].rel for d in used_ranks[name]}
                if entry["file"] not in files:
                    err(f"manifest rank {name} says its mutex lives in {entry['file']}, "
                        f"but declarations using it are in {sorted(files)}")

    # 4. docs table: every rank name + value appears in docs/static-analysis.md.
    docs_rel = h.manifest.get("docs", "docs/static-analysis.md")
    docs_path = os.path.join(root, docs_rel)
    try:
        with open(docs_path, "r", encoding="utf-8") as f:
            docs = f.read()
    except OSError as e:
        err(f"cannot read {docs_rel}: {e}")
        return findings
    for name, value in h.enum.items():
        row_re = re.compile(rf"\b{re.escape(name)}\b.*\b{value}\b|\b{value}\b.*\b{re.escape(name)}\b")
        if not any(row_re.search(line) for line in docs.splitlines()):
            err(f"docs table out of date: {docs_rel} has no row pairing {name} with {value} "
                f"(regenerate with tools/eclipse_lint.py --print-docs-table)")
    return findings


def docs_table(h):
    """The rank table for docs/static-analysis.md, generated from the manifest."""
    lines = [
        "| Rank | Value | Mutex | File | Notes |",
        "|------|-------|-------|------|-------|",
    ]
    for e in sorted(h.manifest["ranks"], key=lambda e: e["value"]):
        lines.append(
            f"| `{e['rank']}` | {e['value']} | `{e['mutex']}` | {e['file']} | {e['notes']} |")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Text engine.
# --------------------------------------------------------------------------

def collect_decls(sources, h, findings):
    """All Mutex declarations in the tree -> [{src, line, var, rank, name}].
    Emits mutex-rank findings for unranked declarations."""
    decls = []
    for src in sources:
        for m in MUTEX_DECL_RE.finditer(src.code):
            var, init = m.group(1), m.group(3)
            # Exclude words that merely end in Mutex (none today) and the
            # wrapper definition itself.
            if src.rel == "src/common/mutex.h" and var in ("mu_",):
                continue
            line = src.line_of(m.start())
            rank_m = RANK_REF_RE.search(init or "")
            if not rank_m:
                if not src.suppressed(line, "mutex-rank"):
                    findings.append(Finding(
                        src.rel, line, "mutex-rank",
                        f"Mutex `{var}` is constructed without a rank — declare it as "
                        f'`Mutex {var}{{Rank::<kBand>, "<Owner::{var}>"}}` '
                        f"(see tools/lock_hierarchy.json)"))
                continue
            rank = "k" + rank_m.group(1)
            if rank not in h.enum:
                findings.append(Finding(
                    src.rel, line, "mutex-rank",
                    f"Mutex `{var}` uses Rank::{rank}, which is not in src/common/lock_rank.h"))
                continue
            # The name string lives in the raw text (blanked in code view).
            name_m = re.search(r'"([^"]*)"', src.raw[m.start():m.end() + 160])
            decls.append({
                "src": src, "line": line, "var": var, "rank": rank,
                "value": h.enum[rank],
                "name": name_m.group(1) if name_m else "",
            })
    return decls


def _decl_index(decls):
    """var name -> list of decls, plus (file stem, var) -> decls for
    same-module resolution."""
    by_var, by_stem_var = {}, {}
    for d in decls:
        by_var.setdefault(d["var"], []).append(d)
        stem = os.path.splitext(os.path.basename(d["src"].rel))[0]
        by_stem_var.setdefault((stem, d["var"]), []).append(d)
    return by_var, by_stem_var


def resolve_lock_target(expr, src, by_var, by_stem_var):
    """Rank value of the mutex named by a MutexLock ctor argument, or None.

    `expr` is e.g. `mu_`, `state->mu`, `s.mu`, `*log->mu`. We take the
    trailing identifier and resolve it (a) uniquely across the tree, else
    (b) uniquely within this file's module (same basename stem, .h/.cc
    pair). Ambiguous targets are skipped — the clang engine resolves them
    precisely through the AST."""
    m = re.search(r"(\w+)\s*$", expr)
    if not m:
        return None
    var = m.group(1)
    cands = by_var.get(var, [])
    if len(cands) == 1:
        return cands[0]
    stem = os.path.splitext(os.path.basename(src.rel))[0]
    local = by_stem_var.get((stem, var), [])
    if len(local) == 1:
        return local[0]
    return None


def scan_file_text(src, h, decls_index, findings):
    by_var, by_stem_var = decls_index
    code = src.code
    intervals = _brace_intervals(code)

    # Active MutexLock scopes: (end_offset, rank_value, var, target_decl).
    locks = []
    for m in MUTEXLOCK_RE.finditer(code):
        scope = _innermost(intervals, m.start())
        end = scope[1] if scope else len(code)
        target = resolve_lock_target(m.group(2), src, by_var, by_stem_var)
        locks.append((m.start(), end, m.group(1), m.group(2), target))

    # lock-order: a lock constructed inside another's scope must have a
    # strictly greater rank.
    for (s1, e1, v1, _t1, d1) in locks:
        if d1 is None:
            continue
        for (s2, _e2, v2, _t2, d2) in locks:
            if d2 is None or s2 <= s1 or s2 >= e1:
                continue
            if d2["value"] <= d1["value"]:
                line = src.line_of(s2)
                if not src.suppressed(line, "lock-order"):
                    findings.append(Finding(
                        src.rel, line, "lock-order",
                        f"MutexLock {v2} acquires \"{d2['name']}\" (rank {d2['value']}) "
                        f"inside the scope of {v1} holding \"{d1['name']}\" "
                        f"(rank {d1['value']}); ranks must strictly increase inward"))

    # blocking-call: no blocking call inside a non-leaf lock's scope.
    leaf_floor = h.leaf_floor if h.leaf_floor is not None else 900
    nonleaf = [(s, e, v, d) for (s, e, v, _t, d) in locks
               if d is not None and d["value"] < leaf_floor]
    for pat, what in BLOCKING_PATTERNS:
        for m in pat.finditer(code):
            for (s, e, v, d) in nonleaf:
                if s < m.start() < e:
                    line = src.line_of(m.start())
                    if not src.suppressed(line, "blocking-call"):
                        findings.append(Finding(
                            src.rel, line, "blocking-call",
                            f"{what} while {v} holds non-leaf lock \"{d['name']}\" "
                            f"(rank {d['value']} < leaf floor {leaf_floor})"))
                    break

    # std-mutex: only src/common may use the raw primitives.
    if not src.rel.startswith("src/common/"):
        for m in STD_SYNC_RE.finditer(code):
            line = src.line_of(m.start())
            if not src.suppressed(line, "std-mutex"):
                findings.append(Finding(
                    src.rel, line, "std-mutex",
                    f"std::{m.group(1)} outside src/common — use the ranked "
                    f"eclipse::Mutex/MutexLock/CondVar wrappers"))

    # hot-path rules.
    for m in HOT_PATH_RE.finditer(code):
        # The annotated function's body is the next top-of-statement brace
        # after the marker (declarations without bodies have `;` first).
        body_open = code.find("{", m.end())
        semi = code.find(";", m.end())
        if body_open == -1 or (semi != -1 and semi < body_open):
            continue  # pure declaration; the definition is checked where it is
        body = _innermost(intervals, body_open + 1)
        if body is None:
            continue
        b0, b1 = body
        seg = code[b0:b1]
        has_reserve = re.search(r"\breserve\s*\(", seg) is not None
        for nm in re.finditer(r"\bnew\b", seg):
            line = src.line_of(b0 + nm.start())
            if not src.suppressed(line, "hotpath-new"):
                findings.append(Finding(
                    src.rel, line, "hotpath-new",
                    "`new` expression in an ECLIPSE_HOT_PATH function"))
        for pm in re.finditer(r"[.>]\s*(push_back|emplace_back)\s*\(", seg):
            if has_reserve:
                break
            line = src.line_of(b0 + pm.start())
            if not src.suppressed(line, "hotpath-pushback"):
                findings.append(Finding(
                    src.rel, line, "hotpath-pushback",
                    f"{pm.group(1)} without a reserve() in the same "
                    f"ECLIPSE_HOT_PATH function"))
        for tm in re.finditer(r"\bstd::to_string\s*\(", seg):
            line = src.line_of(b0 + tm.start())
            if not src.suppressed(line, "hotpath-tostring"):
                findings.append(Finding(
                    src.rel, line, "hotpath-tostring",
                    "std::to_string allocates; ECLIPSE_HOT_PATH functions may not"))


def check_hot_path_required(sources, findings):
    """Every HOT_PATH_REQUIRED entry whose file is in the scan set must have
    ECLIPSE_HOT_PATH adjacent to the matched definition. A missing pattern is
    itself a finding: it means the function was renamed without updating the
    registry (or the enforcement was dropped)."""
    by_rel = {src.rel: src for src in sources}
    for entry in HOT_PATH_REQUIRED:
        src = by_rel.get(entry["file"])
        if src is None:
            continue
        m = re.search(entry["pattern"], src.code)
        if m is None:
            findings.append(Finding(
                entry["file"], 1, "hotpath-required",
                f"no match for registered hot-path pattern {entry['pattern']!r} — "
                f"update HOT_PATH_REQUIRED in tools/eclipse_lint.py alongside the rename"))
            continue
        window = src.code[max(0, m.start() - 200):m.start()]
        if "ECLIPSE_HOT_PATH" not in window:
            line = src.line_of(m.start())
            if not src.suppressed(line, "hotpath-required"):
                findings.append(Finding(
                    entry["file"], line, "hotpath-required",
                    "data-path function must be annotated ECLIPSE_HOT_PATH "
                    "(registered in HOT_PATH_REQUIRED, tools/eclipse_lint.py)"))


def run_text_engine(root, rel_files, h):
    findings = []
    sources = []
    for rel in rel_files:
        try:
            sources.append(Source(os.path.join(root, rel), rel))
        except OSError as e:
            findings.append(Finding(rel, 1, "manifest", f"unreadable: {e}"))
    decls = collect_decls(sources, h, findings)
    idx = _decl_index(decls)
    for src in sources:
        scan_file_text(src, h, idx, findings)
    check_hot_path_required(sources, findings)
    return findings, decls


# --------------------------------------------------------------------------
# Clang (libclang) engine.
# --------------------------------------------------------------------------

def _import_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    if cindex.Config.loaded:
        return cindex
    import glob
    candidates = []
    for pat in ("libclang-*.so*", "libclang.so*", "libclang-*.dylib"):
        for d in ("/usr/lib/llvm-*/lib", "/usr/lib/x86_64-linux-gnu", "/usr/lib", "/usr/local/lib"):
            candidates.extend(sorted(glob.glob(os.path.join(d, pat)), reverse=True))
    for lib in candidates:
        try:
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            cindex.Config.loaded = False
            continue
    try:
        cindex.Index.create()  # maybe it loads with defaults after all
        return cindex
    except Exception:
        return None


def run_clang_engine(root, rel_files, h, compile_db_dir):
    """Precise engine: walks the AST of each TU in the compile database.

    Checks mutex-rank (FieldDecl/VarDecl of eclipse::Mutex without a rank
    argument), lock-order and blocking-call (lexical MutexLock scopes with
    member-resolved ranks), std-mutex (type references), and the hot-path
    rules (functions carrying the `eclipse_hot_path` annotate attribute).
    """
    cindex = _import_cindex()
    if cindex is None:
        raise RuntimeError("libclang (python3-clang) not available")
    CK = cindex.CursorKind
    findings = []
    wanted = {os.path.normpath(os.path.join(root, r)) for r in rel_files}

    try:
        db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
    except cindex.CompilationDatabaseError as e:
        raise RuntimeError(f"no compile database in {compile_db_dir}: {e}")

    index = cindex.Index.create()
    leaf_floor = h.leaf_floor if h.leaf_floor is not None else 900
    seen_decl_keys = set()   # (file, line) de-dup across TUs
    seen_files = set()

    def rel_of(cursor):
        f = cursor.location.file
        if f is None:
            return None
        p = os.path.normpath(f.name)
        if p not in wanted:
            return None
        return os.path.relpath(p, root)

    def add(cursor, rule, msg):
        rel = rel_of(cursor)
        if rel is None:
            return
        line = cursor.location.line
        key = (rel, line, rule, msg)
        if key in seen_decl_keys:
            return
        seen_decl_keys.add(key)
        try:
            src = Source(os.path.join(root, rel), rel)
            if src.suppressed(line, rule):
                return
        except OSError:
            pass
        findings.append(Finding(rel, line, rule, msg))

    def type_is(cursor_type, name):
        return cursor_type.spelling.replace("const ", "").replace("&", "").strip().endswith(name)

    def mutex_decl_rank(field_cursor):
        """Rank value from a Mutex field/var's initializer, or None."""
        for c in field_cursor.walk_preorder():
            if c.kind == CK.DECL_REF_EXPR and c.spelling.startswith("k") \
                    and c.spelling in h.enum:
                return h.enum[c.spelling]
        return None

    def check_function(fn):
        """Lexical MutexLock scopes + blocking calls + hot-path rules."""
        # Gather MutexLock var decls with (extent of enclosing compound, rank).
        lock_scopes = []  # (start_off, end_off, rank, lockvar, mutexname)

        def mutex_of_lock(vd):
            # ctor argument: MEMBER_REF_EXPR / DECL_REF_EXPR to the Mutex.
            for c in vd.walk_preorder():
                if c.kind in (CK.MEMBER_REF_EXPR, CK.DECL_REF_EXPR):
                    ref = c.referenced
                    if ref is not None and type_is(ref.type, "Mutex"):
                        return ref
            return None

        def walk(node, enclosing_compound):
            for ch in node.get_children():
                comp = ch if ch.kind == CK.COMPOUND_STMT else enclosing_compound
                if ch.kind == CK.DECL_STMT:
                    for vd in ch.get_children():
                        if vd.kind == CK.VAR_DECL and type_is(vd.type, "MutexLock"):
                            ref = mutex_of_lock(vd)
                            if ref is not None and enclosing_compound is not None:
                                rank = mutex_decl_rank(ref)
                                if rank is not None:
                                    ext = enclosing_compound.extent
                                    lock_scopes.append((
                                        vd.location.offset, ext.end.offset,
                                        rank, vd.spelling, ref.spelling, vd))
                walk(ch, comp)

        walk(fn, None)

        for (s1, e1, r1, v1, n1, _c1) in lock_scopes:
            for (s2, _e2, r2, v2, n2, c2) in lock_scopes:
                if s2 <= s1 or s2 >= e1:
                    continue
                if r2 <= r1:
                    add(c2, "lock-order",
                        f"MutexLock {v2} acquires `{n2}` (rank {r2}) inside the "
                        f"scope of {v1} holding `{n1}` (rank {r1}); ranks must "
                        f"strictly increase inward")

        nonleaf = [(s, e, r, v, n) for (s, e, r, v, n, _c) in lock_scopes
                   if r < leaf_floor]
        if nonleaf:
            for c in fn.walk_preorder():
                if c.kind != CK.CALL_EXPR:
                    continue
                callee = c.spelling or ""
                blocking = None
                if callee == "Call":
                    blocking = "Transport::Call"
                elif callee == "CallWithRetry":
                    blocking = "net::CallWithRetry"
                elif callee in ("sleep_for", "sleep_until"):
                    blocking = callee
                elif callee == "join":
                    blocking = "thread join"
                if blocking is None:
                    continue
                off = c.location.offset
                for (s, e, r, v, n) in nonleaf:
                    if s < off < e:
                        add(c, "blocking-call",
                            f"{blocking} while {v} holds non-leaf lock `{n}` "
                            f"(rank {r} < leaf floor {leaf_floor})")
                        break

        # Hot-path rules.
        is_hot = any(a.kind == CK.ANNOTATE_ATTR and a.spelling == "eclipse_hot_path"
                     for a in fn.get_children())
        if is_hot and fn.is_definition():
            has_reserve = any(
                c.kind == CK.CALL_EXPR and c.spelling == "reserve"
                for c in fn.walk_preorder())
            for c in fn.walk_preorder():
                if c.kind == CK.CXX_NEW_EXPR:
                    add(c, "hotpath-new",
                        "`new` expression in an ECLIPSE_HOT_PATH function")
                elif c.kind == CK.CALL_EXPR and c.spelling in ("push_back", "emplace_back") \
                        and not has_reserve:
                    add(c, "hotpath-pushback",
                        f"{c.spelling} without a reserve() in the same "
                        f"ECLIPSE_HOT_PATH function")
                elif c.kind == CK.CALL_EXPR and c.spelling == "to_string":
                    add(c, "hotpath-tostring",
                        "std::to_string allocates; ECLIPSE_HOT_PATH functions may not")

    def scan_tu(tu):
        for cursor in tu.cursor.walk_preorder():
            rel = rel_of(cursor)
            if rel is None:
                continue
            if rel in seen_files and cursor.kind == CK.TRANSLATION_UNIT:
                continue
            if cursor.kind in (CK.FIELD_DECL, CK.VAR_DECL) and type_is(cursor.type, "Mutex") \
                    and not type_is(cursor.type, "MutexLock"):
                if mutex_decl_rank(cursor) is None:
                    add(cursor, "mutex-rank",
                        f"Mutex `{cursor.spelling}` is constructed without a rank "
                        f"(see tools/lock_hierarchy.json)")
            elif cursor.kind in (CK.FUNCTION_DECL, CK.CXX_METHOD, CK.CONSTRUCTOR,
                                 CK.DESTRUCTOR, CK.FUNCTION_TEMPLATE) and cursor.is_definition():
                check_function(cursor)
            elif cursor.kind in (CK.TYPE_REF, CK.TEMPLATE_REF) \
                    and not rel.startswith("src/common/"):
                m = STD_SYNC_RE.search(cursor.type.spelling or cursor.spelling or "")
                if m:
                    add(cursor, "std-mutex",
                        f"std::{m.group(1)} outside src/common — use the ranked "
                        f"eclipse::Mutex/MutexLock/CondVar wrappers")

    parsed_any = False
    errors = []
    for cmd in db.getAllCompileCommands() or []:
        f = os.path.normpath(os.path.join(cmd.directory, cmd.filename))
        if f not in wanted:
            continue
        args = [a for a in list(cmd.arguments)[1:] if a not in (cmd.filename, "-c", "-o")]
        # Drop the object-file operand left after removing -o.
        args = [a for a in args if not a.endswith(".o")]
        try:
            tu = index.parse(f, args=args)
        except cindex.TranslationUnitLoadError as e:
            errors.append(f"{os.path.relpath(f, root)}: parse failed: {e}")
            continue
        parsed_any = True
        scan_tu(tu)
        for rel in rel_files:
            seen_files.add(rel)
    if not parsed_any:
        raise RuntimeError(
            "clang engine parsed no requested files (compile database mismatch?); "
            + ("; ".join(errors[:3]) if errors else "no parse errors recorded"))
    if errors:
        print(f"eclipse-lint: warning: {len(errors)} TU(s) failed to parse "
              f"(first: {errors[0]})", file=sys.stderr)
    return findings


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def default_files(root):
    rels = []
    for top in ("src", "tests", "bench", "examples"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            if "lint_fixtures" in dirpath:
                continue  # deliberate-violation fixtures for tests/lint_selftest.py
            for fn in sorted(filenames):
                if fn.endswith((".cc", ".h", ".cpp")):
                    rels.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(rels)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to analyze (default: src, tests, bench, examples)")
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--engine", choices=("auto", "clang", "text"), default="auto")
    ap.add_argument("--compile-db", default=None,
                    help="directory containing compile_commands.json (clang engine)")
    ap.add_argument("--check-manifest", action="store_true",
                    help="run only the manifest/docs/source cross-checks")
    ap.add_argument("--print-docs-table", action="store_true",
                    help="print the docs/static-analysis.md rank table and exit")
    ap.add_argument("--report", default=None, help="write findings as JSON to this file")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    h = Hierarchy(root)
    if h.errors and not h.enum:
        for e in h.errors:
            print(f"eclipse-lint: error: {e}", file=sys.stderr)
        return 2

    if args.print_docs_table:
        if h.manifest is None:
            print("eclipse-lint: error: no manifest", file=sys.stderr)
            return 2
        print(docs_table(h))
        return 0

    full_tree = not args.files
    rel_files = args.files or default_files(root)
    rel_files = [os.path.relpath(os.path.abspath(f), root) if os.path.isabs(f) else f
                 for f in rel_files]

    # Declarations and manifest checks always come from the text scan — they
    # are definitionally lexical (a rank is a construction-site token).
    findings, decls = run_text_engine(root, rel_files, h)
    findings += check_manifest(h, root, decls, full_tree=full_tree)

    engine = args.engine
    if args.check_manifest:
        engine_used = "text"
        findings = [f for f in findings if f.rule in ("manifest", "mutex-rank")]
    elif engine in ("auto", "clang"):
        db_dir = args.compile_db or os.path.join(root, "build")
        try:
            clang_findings = run_clang_engine(root, rel_files, h, db_dir)
            # The clang engine supersedes the text engine's scoped rules.
            lexical = {"mutex-rank", "manifest", "hotpath-required"}
            findings = [f for f in findings if f.rule in lexical] + clang_findings
            engine_used = "clang"
        except RuntimeError as e:
            if engine == "clang":
                print(f"eclipse-lint: error: {e}", file=sys.stderr)
                return 2
            print(f"eclipse-lint: note: clang engine unavailable ({e}); "
                  f"using the text engine", file=sys.stderr)
            engine_used = "text"
    else:
        engine_used = "text"

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump({
                "engine": engine_used,
                "files_analyzed": len(rel_files),
                "findings": [{"file": f.path, "line": f.line, "rule": f.rule,
                              "message": f.message} for f in findings],
            }, out, indent=2)
            out.write("\n")
    n = len(findings)
    print(f"eclipse-lint [{engine_used}]: {len(rel_files)} files, "
          f"{n} finding{'s' if n != 1 else ''}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
