#!/usr/bin/env bash
# Static-analysis driver: eclipse-lint (lock hierarchy / hot-path rules, see
# docs/static-analysis.md), clang-tidy (bugprone/concurrency/performance, see
# .clang-tidy), plus a Clang thread-safety-annotation build
# (-Werror=thread-safety against the annotations in
# src/common/thread_annotations.h).
#
# Usage:
#   tools/run_static_analysis.sh [--tidy-only|--tsa-only|--lint-only] \
#                                [--ci] [paths...]
#
# With no paths, analyzes every .cc under src/, tests/, and bench/ (tests are
# concurrency-heavy and have caught real locking bugs; they get the same
# scrutiny as production code). Locally, each stage is skipped with a warning
# when its toolchain is absent, so the script degrades gracefully on gcc-only
# boxes. With --ci, a missing toolchain is a hard failure — CI installs clang
# and must never silently skip a stage.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-analysis}"
MODE=all
CI=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tidy-only) MODE=tidy; shift ;;
    --tsa-only)  MODE=tsa; shift ;;
    --lint-only) MODE=lint; shift ;;
    --ci)        CI=1; shift ;;
    *) break ;;
  esac
done

fail=0

# A stage whose toolchain is missing: warn locally, fail under --ci.
missing() {
  if [[ $CI -eq 1 ]]; then
    echo "ERROR: $1 not found and --ci is set; stage cannot be skipped" >&2
    fail=1
  else
    echo "WARNING: $1 not found; skipping the $2 stage" >&2
  fi
}

find_tool() {
  for cand in "$1" "$1-19" "$1-18" "$1-17" "$1-16" "$1-15" "$1-14"; do
    if command -v "$cand" > /dev/null 2>&1; then
      echo "$cand"
      return 0
    fi
  done
  return 1
}

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" \
      -name '*.cc' -not -path '*/lint_fixtures/*' 2> /dev/null | sort)
fi

# ---- Stage 0: eclipse-lint (lock hierarchy + hot-path rules) ----
if [[ $MODE == all || $MODE == lint ]]; then
  if command -v python3 > /dev/null 2>&1; then
    # Prefer the precise libclang engine when python3-clang is installed
    # (CI); fall back to the dependency-free text engine locally. --engine
    # auto does exactly that resolution.
    echo "== eclipse-lint over the tree (tools/eclipse_lint.py)"
    lint_args=(--engine auto --check-manifest)
    if [[ $CI -eq 1 ]]; then
      lint_args+=(--report "$ROOT/lint_report.json")
    fi
    (cd "$ROOT" && python3 tools/eclipse_lint.py "${lint_args[@]}") || fail=1
  else
    missing python3 eclipse-lint
  fi
fi

# ---- Stage 1: clang-tidy over the compile database ----
if [[ $MODE == all || $MODE == tidy ]]; then
  if TIDY="$(find_tool clang-tidy)"; then
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
      echo "== configuring $BUILD_DIR for the compile database"
      cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 1
    fi
    echo "== clang-tidy ($TIDY) over ${#files[@]} files"
    "$TIDY" -p "$BUILD_DIR" --quiet "${files[@]}" || fail=1
  else
    missing clang-tidy tidy
  fi
fi

# ---- Stage 2: Clang build with thread-safety analysis ----
if [[ $MODE == all || $MODE == tsa ]]; then
  if CLANGXX="$(find_tool clang++)"; then
    TSA_DIR="${TSA_BUILD_DIR:-$ROOT/build-tsa}"
    echo "== clang thread-safety build ($CLANGXX, -Werror=thread-safety)"
    cmake -B "$TSA_DIR" -S "$ROOT" -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null || exit 1
    cmake --build "$TSA_DIR" -j "$(nproc)" || fail=1
  else
    missing clang++ thread-safety-build
  fi
fi

exit $fail
