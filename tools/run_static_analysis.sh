#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (bugprone/concurrency/performance, see
# .clang-tidy) plus a Clang thread-safety-annotation build
# (-Werror=thread-safety against the annotations in
# src/common/thread_annotations.h).
#
# Usage:
#   tools/run_static_analysis.sh [--tidy-only|--tsa-only] [paths...]
#
# With no paths, analyzes every .cc under src/. Each stage is skipped (with a
# warning, not a failure) when its toolchain is absent, so the script degrades
# gracefully on gcc-only boxes; CI installs clang and runs both stages.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-analysis}"
MODE=all
if [[ "${1:-}" == "--tidy-only" ]]; then MODE=tidy; shift; fi
if [[ "${1:-}" == "--tsa-only" ]]; then MODE=tsa; shift; fi

fail=0

find_tool() {
  for cand in "$1" "$1-19" "$1-18" "$1-17" "$1-16" "$1-15" "$1-14"; do
    if command -v "$cand" > /dev/null 2>&1; then
      echo "$cand"
      return 0
    fi
  done
  return 1
}

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find "$ROOT/src" -name '*.cc' | sort)
fi

# ---- Stage 1: clang-tidy over the compile database ----
if [[ $MODE != tsa ]]; then
  if TIDY="$(find_tool clang-tidy)"; then
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
      echo "== configuring $BUILD_DIR for the compile database"
      cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 1
    fi
    echo "== clang-tidy ($TIDY) over ${#files[@]} files"
    "$TIDY" -p "$BUILD_DIR" --quiet "${files[@]}" || fail=1
  else
    echo "WARNING: clang-tidy not found; skipping the tidy stage" >&2
  fi
fi

# ---- Stage 2: Clang build with thread-safety analysis ----
if [[ $MODE != tidy ]]; then
  if CLANGXX="$(find_tool clang++)"; then
    TSA_DIR="${TSA_BUILD_DIR:-$ROOT/build-tsa}"
    echo "== clang thread-safety build ($CLANGXX, -Werror=thread-safety)"
    cmake -B "$TSA_DIR" -S "$ROOT" -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null || exit 1
    cmake --build "$TSA_DIR" -j "$(nproc)" || fail=1
  else
    echo "WARNING: clang++ not found; skipping the thread-safety build" >&2
  fi
fi

exit $fail
