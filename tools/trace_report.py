#!/usr/bin/env python3
"""Validate and summarize an EclipseMR Chrome trace-event JSON capture.

Out-of-process twin of src/obs: ValidateChromeTrace's structural checks and
obs::Summarize's per-job reduction, over the JSON artifact instead of the
in-memory capture. Works on captures from the real engine (B/E spans) and
from the DES simulator ('X' complete events) alike — that schema parity is
the point (see docs/observability.md).

Usage:
    tools/trace_report.py trace.json              # validate + summary
    tools/trace_report.py --validate-only trace.json
    tools/trace_report.py --diff real.json sim.json

Exit status: 0 valid, 1 structurally invalid, 2 unreadable input.
Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("ph", "ts", "pid", "tid", "name", "cat")
PHASES = {"B", "E", "i", "X"}


def validate(events):
    """Return a list of structural errors (empty list = valid)."""
    errors = []
    last_ts = None
    stacks = {}  # (pid, tid) -> [span names]
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {n}: not an object")
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in ev]
        if missing:
            errors.append(f"event {n}: missing fields {missing}")
            continue
        ph = ev["ph"]
        if ph not in PHASES:
            errors.append(f"event {n}: unknown phase {ph!r}")
            continue
        ts = ev["ts"]
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {n}: timestamp {ts} < previous {last_ts}")
        last_ts = ts
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                errors.append(f"event {n}: 'E' {ev['name']!r} with no open span on {track}")
            elif stack[-1] != ev["name"]:
                errors.append(
                    f"event {n}: 'E' {ev['name']!r} does not close {stack[-1]!r} on {track}")
            else:
                stack.pop()
        elif ph == "X" and "dur" not in ev:
            errors.append(f"event {n}: 'X' without dur")
    for track, stack in stacks.items():
        for name in stack:
            errors.append(f"unclosed span {name!r} on {track}")
    return errors


def complete_spans(events):
    """Pair B/E per (pid, tid) track; pass X and i through.

    Yields dicts: {name, cat, ph ('X' or 'i'), pid, ts, dur, args}.
    """
    spans = []
    stacks = {}
    for ev in events:
        ph = ev["ph"]
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks.setdefault(track, []).append(ev)
        elif ph == "E":
            stack = stacks.get(track, [])
            if stack and stack[-1]["name"] == ev["name"]:
                begin = stack.pop()
                args = dict(begin.get("args", {}))
                args.update(ev.get("args", {}))
                spans.append({
                    "name": ev["name"], "cat": ev["cat"], "ph": "X",
                    "pid": ev["pid"], "ts": begin["ts"],
                    "dur": ev["ts"] - begin["ts"], "args": args,
                })
        else:
            spans.append({
                "name": ev["name"], "cat": ev["cat"], "ph": ph,
                "pid": ev["pid"], "ts": ev["ts"],
                "dur": ev.get("dur", 0), "args": ev.get("args", {}),
            })
    spans.sort(key=lambda s: s["ts"])
    return spans


LOCALITIES = ("memory", "local_disk", "remote_disk", "skipped")


def summarize(events):
    """Per-job summaries, mirroring obs::Summarize."""
    spans = complete_spans(events)
    jobs = [
        {
            "job_id": s["args"].get("job", 0), "start": s["ts"], "wall": s["dur"],
            "maps": 0, "reduces": 0, "waves": 0,
            "locality": {k: 0 for k in LOCALITIES},
            "bytes": {k: 0 for k in LOCALITIES}, "spilled": 0,
            "assigns": 0, "repartitions": 0,
            "map_us": [], "reduce_us": [],
        }
        for s in spans if s["ph"] == "X" and s["name"] == "job"
    ]

    by_id = {}
    for j in jobs:
        by_id.setdefault(j["job_id"], j)

    def owner(ts):
        best = None
        for j in jobs:
            if j["start"] <= ts <= j["start"] + j["wall"]:
                best = j
        return best

    for s in spans:
        # An explicit `job` argument is authoritative (concurrent jobs have
        # overlapping intervals); spans without one — older captures and the
        # DES simulator — fall back to interval containment.
        j = None
        if s["name"] != "job":
            j = by_id.get(s["args"].get("job"))
        if j is None:
            j = owner(s["ts"])
        if j is None:
            continue
        name, args = s["name"], s["args"]
        if name == "map_task" and s["ph"] == "X":
            j["maps"] += 1
            j["map_us"].append(s["dur"])
            loc = args.get("locality", "skipped")
            if loc in j["locality"]:
                j["locality"][loc] += 1
                j["bytes"][loc] += args.get("bytes", 0)
        elif name == "reduce_task" and s["ph"] == "X":
            j["reduces"] += 1
            j["reduce_us"].append(s["dur"])
        elif name == "map_phase" and s["ph"] == "X":
            j["waves"] += 1
        elif name == "spill":
            j["spilled"] += args.get("bytes", 0)
        elif name == "sched_assign":
            j["assigns"] += 1
        elif name == "laf_repartition":
            j["repartitions"] += 1
    return jobs


def quantile(sorted_vals, q):
    if not sorted_vals:
        return 0
    idx = max(0, min(len(sorted_vals) - 1, int(q * len(sorted_vals) + 0.999999) - 1))
    return sorted_vals[idx]


def render(jobs):
    lines = [f"=== trace summary: {len(jobs)} job(s) ==="]
    for j in jobs:
        total = max(j["maps"], 1)
        lines.append(
            f"job {j['job_id']}: wall {j['wall'] / 1000.0:.3f} ms, "
            f"{j['maps']} map task(s) in {j['waves']} wave(s), {j['reduces']} reduce task(s)")
        loc = j["locality"]
        lines.append(
            "  map locality: "
            f"memory {loc['memory']} ({100.0 * loc['memory'] / total:.1f}%) | "
            f"local-disk {loc['local_disk']} ({100.0 * loc['local_disk'] / total:.1f}%) | "
            f"remote-disk {loc['remote_disk']} ({100.0 * loc['remote_disk'] / total:.1f}%) | "
            f"skipped {loc['skipped']}")
        b = j["bytes"]
        lines.append(
            f"  bytes: from-memory {b['memory']} | local-disk {b['local_disk']} | "
            f"remote-disk {b['remote_disk']} | spilled {j['spilled']}")
        for key, label in (("map_us", "map task us"), ("reduce_us", "reduce task us")):
            vals = sorted(j[key])
            if vals:
                lines.append(
                    f"  {label}: p50 {quantile(vals, 0.5)} | p95 {quantile(vals, 0.95)} | "
                    f"p99 {quantile(vals, 0.99)} | max {vals[-1]} (n={len(vals)})")
        lines.append(
            f"  sched: {j['assigns']} assign(s), {j['repartitions']} LAF repartition(s)")
    return "\n".join(lines)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable: {e}", file=sys.stderr)
        sys.exit(2)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"{path}: no traceEvents array", file=sys.stderr)
        sys.exit(1)
    return events


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("other", nargs="?", help="second trace for --diff")
    ap.add_argument("--validate-only", action="store_true",
                    help="structural validation only, no summary")
    ap.add_argument("--diff", action="store_true",
                    help="print both summaries side by side (e.g. real vs sim)")
    args = ap.parse_args()

    paths = [args.trace] + ([args.other] if args.diff and args.other else [])
    status = 0
    for path in paths:
        events = load(path)
        errors = validate(events)
        if errors:
            status = 1
            print(f"{path}: INVALID ({len(errors)} error(s))")
            for e in errors[:20]:
                print(f"  {e}")
            continue
        print(f"{path}: valid ({len(events)} events)")
        if not args.validate_only:
            print(render(summarize(events)))
    return status


if __name__ == "__main__":
    sys.exit(main())
